"""Shared fixtures: the paper's example collections, ready-made databases."""

from __future__ import annotations

import pytest

from repro import Database
from repro.compat.listings import (
    CLOSING_PRICES,
    EMP_MISSING,
    EMP_MIXED,
    EMP_NEST_SCALARS,
    EMP_NEST_TUPLES,
    EMP_NULL,
    HR_EMP,
    STOCK_PRICES,
    TODAY_STOCK_PRICES,
)


@pytest.fixture
def db() -> Database:
    """An empty default-mode database."""
    return Database()


@pytest.fixture
def paper_db() -> Database:
    """A database holding every collection the paper's listings use."""
    database = Database()
    database.load_value("hr.emp_nest_tuples", EMP_NEST_TUPLES)
    database.load_value("hr.emp_nest_scalars", EMP_NEST_SCALARS)
    database.load_value("hr.emp_null", EMP_NULL)
    database.load_value("hr.emp_missing", EMP_MISSING)
    database.load_value("hr.emp_mixed", EMP_MIXED)
    database.load_value("hr.emp", HR_EMP)
    database.load_value("closing_prices", CLOSING_PRICES)
    database.load_value("today_stock_prices", TODAY_STOCK_PRICES)
    database.load_value("stock_prices", STOCK_PRICES)
    return database


@pytest.fixture
def core_db(paper_db: Database) -> Database:
    """The paper collections under composability (Core) mode."""
    database = Database(sql_compat=False)
    for name in paper_db.names():
        database.set(name, paper_db.get(name))
    return database


def bag_of(result):
    """Normalise a query result to a list of elements for assertions."""
    from repro.datamodel.values import Bag

    if isinstance(result, Bag):
        return result.to_list()
    if isinstance(result, list):
        return result
    return [result]
