"""Binding environments.

The SQL++ Core models a query block as a pipeline of clauses that
transform streams of *bindings*: finite maps from variable names to
values (paper, Section III — the FROM clause "delivers bindings of the
variables to arbitrarily typed values").

:class:`Environment` is an immutable-by-convention chain map: extending
produces a child environment, so sibling bindings in a FROM cross product
never interfere and closures over outer scopes (correlated subqueries)
come for free.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Optional


class Unbound(Exception):
    """Internal signal: a name is bound neither in scope nor the catalog.

    Carries the dotted name accumulated so far, so path evaluation can try
    successively longer catalog names (``hr`` → ``hr.emp``).  Converted to
    :class:`repro.errors.BindingError` at the query boundary.
    """

    def __init__(self, name: str):
        self.name = name
        super().__init__(name)


class Environment:
    """A chain of variable scopes."""

    __slots__ = ("_bindings", "_parent")

    def __init__(
        self,
        bindings: Optional[Dict[str, Any]] = None,
        parent: Optional["Environment"] = None,
    ):
        self._bindings = bindings or {}
        self._parent = parent

    def extend(self, bindings: Dict[str, Any]) -> "Environment":
        """A child environment with the given additional bindings."""
        return Environment(bindings, parent=self)

    def bind(self, name: str, value: Any) -> "Environment":
        """A child environment with one additional binding."""
        return Environment({name: value}, parent=self)

    def lookup(self, name: str) -> Any:
        """The value bound to ``name``; raises :class:`Unbound` otherwise."""
        env: Optional[Environment] = self
        while env is not None:
            if name in env._bindings:
                return env._bindings[name]
            env = env._parent
        raise Unbound(name)

    def is_bound(self, name: str) -> bool:
        env: Optional[Environment] = self
        while env is not None:
            if name in env._bindings:
                return True
            env = env._parent
        return False

    def local_names(self) -> Iterator[str]:
        """Names bound in this innermost scope only."""
        return iter(self._bindings)

    def flatten(self) -> Dict[str, Any]:
        """All visible bindings as a dict (inner scopes win)."""
        scopes = []
        env: Optional[Environment] = self
        while env is not None:
            scopes.append(env._bindings)
            env = env._parent
        result: Dict[str, Any] = {}
        for scope in reversed(scopes):
            result.update(scope)
        return result

    def __repr__(self) -> str:
        return f"Environment({self.flatten()!r})"


#: A shared empty root environment.
EMPTY = Environment()
