"""Render SQL++ ASTs back to source text.

Used by ``EXPLAIN`` (showing the rewritten Core query), by the grouping-
sets key canonicaliser, and by the parser/printer round-trip property
tests: for every generated AST, ``parse(print_ast(q))`` must equal ``q``.

The printer always emits fully parenthesised, SELECT-first text with
explicit ``AS`` aliases, which is unambiguous regardless of the surface
form the input used.
"""

from __future__ import annotations

from typing import List

from repro.datamodel.values import MISSING
from repro.syntax import ast

_IDENT_SAFE = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_$"
)


def print_ast(node: ast.Node) -> str:
    """Render any AST node to SQL++ source text."""
    return _Printer().render(node)


def _quote_string(text: str) -> str:
    return "'" + text.replace("'", "''") + "'"


def _quote_identifier(name: str) -> str:
    from repro.syntax.tokens import KEYWORDS

    if (
        name
        and all(char in _IDENT_SAFE for char in name)
        and not name[0].isdigit()
        and name.upper() not in KEYWORDS
    ):
        return name
    return '"' + name.replace('"', '""') + '"'


class _Printer:
    """Stateless rendering helpers, dispatched by node type."""

    def render(self, node: ast.Node) -> str:
        method = getattr(self, "_render_" + type(node).__name__.lower(), None)
        if method is None:
            raise TypeError(f"cannot print AST node {type(node).__name__}")
        return method(node)

    # -- queries -----------------------------------------------------------

    def _render_query(self, node: ast.Query) -> str:
        parts = [self.render(node.body)]
        if node.order_by:
            keys = ", ".join(self._order_item(item) for item in node.order_by)
            parts.append(f"ORDER BY {keys}")
        if node.limit is not None:
            parts.append(f"LIMIT {self.render(node.limit)}")
        if node.offset is not None:
            parts.append(f"OFFSET {self.render(node.offset)}")
        return " ".join(parts)

    def _order_item(self, item: ast.OrderItem) -> str:
        text = self.render(item.expr)
        if item.desc:
            text += " DESC"
        if item.nulls_first is True:
            text += " NULLS FIRST"
        elif item.nulls_first is False:
            text += " NULLS LAST"
        return text

    def _render_setop(self, node: ast.SetOp) -> str:
        keyword = node.op + (" ALL" if node.all else "")
        return f"{self._setop_term(node.left)} {keyword} {self._setop_term(node.right)}"

    def _setop_term(self, term: ast.Node) -> str:
        # SubqueryExpr already renders with its own parentheses.
        if isinstance(term, ast.SubqueryExpr):
            return self.render(term)
        return f"({self.render(term)})"

    def _render_queryblock(self, node: ast.QueryBlock) -> str:
        # Preserve the surface clause order (SELECT-first SQL style vs
        # the paper's FROM-first style) so print→parse round-trips to
        # an identical tree.
        parts = [self.render(node.select)] if node.select_first else []
        if node.from_ is not None:
            items = ", ".join(self.render(item) for item in node.from_)
            parts.append(f"FROM {items}")
        for let in node.lets:
            parts.append(f"LET {_quote_identifier(let.name)} = {self.render(let.expr)}")
        if node.where is not None:
            parts.append(f"WHERE {self.render(node.where)}")
        if node.group_by is not None:
            parts.append(self._group_by(node.group_by))
        if node.having is not None:
            parts.append(f"HAVING {self.render(node.having)}")
        if not node.select_first:
            parts.append(self.render(node.select))
        return " ".join(parts)

    def _group_by(self, clause: ast.GroupByClause) -> str:
        keys = ", ".join(
            f"{self.render(key.expr)} AS {_quote_identifier(key.alias)}"
            for key in clause.keys
        )
        if clause.mode == "rollup":
            text = f"GROUP BY ROLLUP ({keys})"
        elif clause.mode == "cube":
            text = f"GROUP BY CUBE ({keys})"
        elif clause.mode == "sets":
            sets = ", ".join(
                "(" + ", ".join(self.render(clause.keys[i].expr) for i in indexes) + ")"
                for indexes in clause.grouping_sets or []
            )
            text = f"GROUP BY GROUPING SETS ({sets})"
        else:
            text = f"GROUP BY {keys}" if clause.keys else "GROUP BY"
        if clause.group_as:
            text += f" GROUP AS {_quote_identifier(clause.group_as)}"
        return text

    # -- select clauses ------------------------------------------------------

    def _render_selectvalue(self, node: ast.SelectValue) -> str:
        distinct = "DISTINCT " if node.distinct else ""
        return f"SELECT {distinct}VALUE {self.render(node.expr)}"

    def _render_selectlist(self, node: ast.SelectList) -> str:
        distinct = "DISTINCT " if node.distinct else ""
        items = []
        for item in node.items:
            text = self.render(item.expr)
            if item.star:
                text += ".*"
            elif item.alias is not None:
                text += f" AS {_quote_identifier(item.alias)}"
            items.append(text)
        return f"SELECT {distinct}" + ", ".join(items)

    def _render_selectstar(self, node: ast.SelectStar) -> str:
        distinct = "DISTINCT " if node.distinct else ""
        return f"SELECT {distinct}*"

    def _render_pivotclause(self, node: ast.PivotClause) -> str:
        return f"PIVOT {self.render(node.value)} AT {self.render(node.at)}"

    # -- FROM items ----------------------------------------------------------

    def _render_fromcollection(self, node: ast.FromCollection) -> str:
        text = f"{self.render(node.expr)} AS {_quote_identifier(node.alias)}"
        if node.at_alias:
            text += f" AT {_quote_identifier(node.at_alias)}"
        return text

    def _render_fromunpivot(self, node: ast.FromUnpivot) -> str:
        return (
            f"UNPIVOT {self.render(node.expr)} AS "
            f"{_quote_identifier(node.value_alias)} AT "
            f"{_quote_identifier(node.at_alias)}"
        )

    def _render_fromjoin(self, node: ast.FromJoin) -> str:
        keyword = {"INNER": "JOIN", "LEFT": "LEFT JOIN", "CROSS": "CROSS JOIN"}[
            node.kind
        ]
        text = f"{self.render(node.left)} {keyword} {self.render(node.right)}"
        if node.on is not None:
            text += f" ON {self.render(node.on)}"
        return text

    # -- expressions -----------------------------------------------------------

    def _render_literal(self, node: ast.Literal) -> str:
        value = node.value
        if value is MISSING:
            return "MISSING"
        if value is None:
            return "NULL"
        if value is True:
            return "TRUE"
        if value is False:
            return "FALSE"
        if isinstance(value, str):
            return _quote_string(value)
        if isinstance(value, float):
            return repr(value)
        return str(value)

    def _render_varref(self, node: ast.VarRef) -> str:
        return _quote_identifier(node.name)

    def _render_path(self, node: ast.Path) -> str:
        return f"{self._base(node.base)}.{_quote_identifier(node.attr)}"

    def _render_index(self, node: ast.Index) -> str:
        return f"{self._base(node.base)}[{self.render(node.index)}]"

    def _render_pathwildcard(self, node: ast.PathWildcard) -> str:
        text = f"{self._base(node.base)}[*]"
        for step in node.steps:
            if step.wildcard is not None:
                text += "[*]"
            elif step.attr is not None:
                text += f".{_quote_identifier(step.attr)}"
            else:
                text += f"[{self.render(step.index)}]"
        return text

    def _base(self, expr: ast.Expr) -> str:
        """Render a path base, parenthesising non-primary expressions."""
        if isinstance(
            expr,
            (
                ast.VarRef,
                ast.Path,
                ast.Index,
                ast.FunctionCall,
                ast.SubqueryExpr,
                ast.StructLit,
                ast.ArrayLit,
                ast.BagLit,
                ast.Parameter,
            ),
        ):
            return self.render(expr)
        return f"({self.render(expr)})"

    def _render_structfield(self, node: ast.StructField) -> str:
        return f"{self.render(node.key)}: {self.render(node.value)}"

    def _render_structlit(self, node: ast.StructLit) -> str:
        inner = ", ".join(self.render(field) for field in node.fields)
        return "{" + inner + "}"

    def _render_arraylit(self, node: ast.ArrayLit) -> str:
        return "[" + ", ".join(self.render(item) for item in node.items) + "]"

    def _render_baglit(self, node: ast.BagLit) -> str:
        return "<<" + ", ".join(self.render(item) for item in node.items) + ">>"

    def _render_unary(self, node: ast.Unary) -> str:
        # NOT binds looser than comparisons/arithmetic, so it must carry
        # its own parentheses to stay a self-contained operand.
        if node.op == "NOT":
            return f"(NOT ({self.render(node.operand)}))"
        return f"{node.op}({self.render(node.operand)})"

    def _render_binary(self, node: ast.Binary) -> str:
        return f"({self.render(node.left)} {node.op} {self.render(node.right)})"

    def _render_ispredicate(self, node: ast.IsPredicate) -> str:
        negation = "NOT " if node.negated else ""
        return f"({self.render(node.operand)} IS {negation}{node.kind})"

    def _render_like(self, node: ast.Like) -> str:
        negation = "NOT " if node.negated else ""
        text = f"({self.render(node.operand)} {negation}LIKE {self.render(node.pattern)}"
        if node.escape is not None:
            text += f" ESCAPE {self.render(node.escape)}"
        return text + ")"

    def _render_between(self, node: ast.Between) -> str:
        negation = "NOT " if node.negated else ""
        return (
            f"({self.render(node.operand)} {negation}BETWEEN "
            f"{self.render(node.low)} AND {self.render(node.high)})"
        )

    def _render_inpredicate(self, node: ast.InPredicate) -> str:
        negation = "NOT " if node.negated else ""
        return (
            f"({self.render(node.operand)} {negation}IN "
            f"{self._base(node.collection)})"
        )

    def _render_exists(self, node: ast.Exists) -> str:
        return f"EXISTS {self._base(node.operand)}"

    def _render_caseexpr(self, node: ast.CaseExpr) -> str:
        parts = ["CASE"]
        if node.operand is not None:
            parts.append(self.render(node.operand))
        for condition, result in node.whens:
            parts.append(f"WHEN {self.render(condition)} THEN {self.render(result)}")
        if node.else_ is not None:
            parts.append(f"ELSE {self.render(node.else_)}")
        parts.append("END")
        return " ".join(parts)

    def _render_functioncall(self, node: ast.FunctionCall) -> str:
        if node.star:
            inner = "*"
        else:
            args = ", ".join(self.render(arg) for arg in node.args)
            inner = ("DISTINCT " if node.distinct else "") + args
        return f"{node.name}({inner})"

    def _render_windowcall(self, node: ast.WindowCall) -> str:
        spec_parts: List[str] = []
        if node.spec.partition_by:
            keys = ", ".join(self.render(expr) for expr in node.spec.partition_by)
            spec_parts.append(f"PARTITION BY {keys}")
        if node.spec.order_by:
            keys = ", ".join(self._order_item(item) for item in node.spec.order_by)
            spec_parts.append(f"ORDER BY {keys}")
        return f"{self.render(node.call)} OVER ({' '.join(spec_parts)})"

    def _render_subqueryexpr(self, node: ast.SubqueryExpr) -> str:
        return f"({self.render(node.query)})"

    def _render_coercesubquery(self, node: ast.CoerceSubquery) -> str:
        # Only appears in rewritten (Core) trees shown by EXPLAIN.
        return f"COERCE_{node.mode.upper()}(({self.render(node.query)}))"

    def _render_parameter(self, node: ast.Parameter) -> str:
        return "?"

    def _render_castexpr(self, node: ast.CastExpr) -> str:
        return f"CAST({self.render(node.operand)} AS {node.type_name})"
