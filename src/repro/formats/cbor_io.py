"""A from-scratch CBOR (RFC 8949) codec for the SQL++ data model.

The paper lists CBOR among the formats SQL++ must be independent of
(tenet 5).  This is a self-contained binary codec covering the subset
the data model needs:

* major type 0/1 — non-negative / negative integers (all sizes);
* major type 2 — byte strings (decoded to ``str`` via UTF-8 fallback is
  *not* attempted: byte strings are rejected, the data model has no
  binary scalar);
* major type 3 — text strings;
* major type 4 — arrays;
* major type 5 — maps with text keys → tuples (duplicate keys preserved,
  which JSON cannot do — Section II allows duplicate attribute names);
* major type 6 — tag ``1008`` marks a SQL++ *bag* (its content is an
  array); other tags are rejected;
* major type 7 — false/true/null and IEEE-754 doubles (encoded as
  64-bit; 16/32-bit floats are decoded too).

Canonical-length integer encoding is used, so encodings are
deterministic and round-trip tests can compare bytes.
"""

from __future__ import annotations

import math
import struct
from typing import Any, List, Tuple

from repro.datamodel.values import MISSING, Bag, Struct, type_name
from repro.errors import FormatError

#: Private CBOR tag marking a bag (unassigned in the IANA registry).
BAG_TAG = 1008


# =========================================================================
# Encoding
# =========================================================================


def dumps(value: Any) -> bytes:
    """Encode a model value as CBOR bytes."""
    out = bytearray()
    _encode(value, out)
    return bytes(out)


def _encode_head(major: int, argument: int, out: bytearray) -> None:
    if argument < 24:
        out.append((major << 5) | argument)
    elif argument < 0x100:
        out.append((major << 5) | 24)
        out.append(argument)
    elif argument < 0x10000:
        out.append((major << 5) | 25)
        out.extend(struct.pack(">H", argument))
    elif argument < 0x100000000:
        out.append((major << 5) | 26)
        out.extend(struct.pack(">I", argument))
    else:
        out.append((major << 5) | 27)
        out.extend(struct.pack(">Q", argument))


def _encode(value: Any, out: bytearray) -> None:
    if value is MISSING:
        raise FormatError("MISSING cannot be serialised as CBOR")
    if value is None:
        out.append(0xF6)
    elif value is True:
        out.append(0xF5)
    elif value is False:
        out.append(0xF4)
    elif isinstance(value, int):
        if value >= 0:
            if value >= 2**64:
                raise FormatError("integer too large for CBOR")
            _encode_head(0, value, out)
        else:
            if -value - 1 >= 2**64:
                raise FormatError("integer too small for CBOR")
            _encode_head(1, -value - 1, out)
    elif isinstance(value, float):
        out.append(0xFB)
        out.extend(struct.pack(">d", value))
    elif isinstance(value, str):
        encoded = value.encode("utf-8")
        _encode_head(3, len(encoded), out)
        out.extend(encoded)
    elif isinstance(value, list):
        _encode_head(4, len(value), out)
        for item in value:
            _encode(item, out)
    elif isinstance(value, Bag):
        _encode_head(6, BAG_TAG, out)
        _encode_head(4, len(value), out)
        for item in value:
            _encode(item, out)
    elif isinstance(value, Struct):
        _encode_head(5, len(value), out)
        for name, item in value.items():
            _encode(name, out)
            _encode(item, out)
    else:
        raise FormatError(f"cannot serialise {type_name(value)} as CBOR")


# =========================================================================
# Decoding
# =========================================================================


def loads(data: bytes) -> Any:
    """Decode CBOR bytes into a model value."""
    value, position = _decode(data, 0)
    if position != len(data):
        raise FormatError(
            f"trailing bytes after CBOR value ({len(data) - position} left)"
        )
    return value


def _decode_head(data: bytes, position: int) -> Tuple[int, int, int]:
    if position >= len(data):
        raise FormatError("truncated CBOR input")
    initial = data[position]
    major = initial >> 5
    info = initial & 0x1F
    position += 1
    if info < 24:
        return major, info, position
    if info == 24:
        _check(data, position, 1)
        return major, data[position], position + 1
    if info == 25:
        _check(data, position, 2)
        return major, struct.unpack_from(">H", data, position)[0], position + 2
    if info == 26:
        _check(data, position, 4)
        return major, struct.unpack_from(">I", data, position)[0], position + 4
    if info == 27:
        _check(data, position, 8)
        return major, struct.unpack_from(">Q", data, position)[0], position + 8
    raise FormatError(f"unsupported CBOR additional info {info}")


def _check(data: bytes, position: int, count: int) -> None:
    if position + count > len(data):
        raise FormatError("truncated CBOR input")


def _decode(data: bytes, position: int) -> Tuple[Any, int]:
    if position >= len(data):
        raise FormatError("truncated CBOR input")
    initial = data[position]

    # Major type 7 simple values and floats need the raw initial byte.
    if initial == 0xF4:
        return False, position + 1
    if initial == 0xF5:
        return True, position + 1
    if initial == 0xF6:
        return None, position + 1
    if initial == 0xF9:
        _check(data, position + 1, 2)
        return _decode_half(data[position + 1 : position + 3]), position + 3
    if initial == 0xFA:
        _check(data, position + 1, 4)
        return struct.unpack_from(">f", data, position + 1)[0], position + 5
    if initial == 0xFB:
        _check(data, position + 1, 8)
        return struct.unpack_from(">d", data, position + 1)[0], position + 9

    major, argument, position = _decode_head(data, position)
    if major == 0:
        return argument, position
    if major == 1:
        return -1 - argument, position
    if major == 2:
        raise FormatError("CBOR byte strings have no SQL++ counterpart")
    if major == 3:
        _check(data, position, argument)
        text = data[position : position + argument].decode("utf-8")
        return text, position + argument
    if major == 4:
        items: List[Any] = []
        for __ in range(argument):
            item, position = _decode(data, position)
            items.append(item)
        return items, position
    if major == 5:
        pairs: List[Tuple[str, Any]] = []
        for __ in range(argument):
            key, position = _decode(data, position)
            if not isinstance(key, str):
                raise FormatError("CBOR map keys must be text for SQL++ tuples")
            item, position = _decode(data, position)
            pairs.append((key, item))
        return Struct(pairs), position
    if major == 6:
        if argument != BAG_TAG:
            raise FormatError(f"unsupported CBOR tag {argument}")
        content, position = _decode(data, position)
        if not isinstance(content, list):
            raise FormatError("bag tag must wrap an array")
        return Bag(content), position
    raise FormatError(f"unsupported CBOR major type {major}")


def _decode_half(payload: bytes) -> float:
    """Decode an IEEE-754 half-precision float (RFC 8949 appendix D)."""
    half = (payload[0] << 8) | payload[1]
    exponent = (half >> 10) & 0x1F
    mantissa = half & 0x3FF
    if exponent == 0:
        value = mantissa * 2.0**-24
    elif exponent != 31:
        value = (mantissa + 1024) * 2.0 ** (exponent - 25)
    else:
        value = math.inf if mantissa == 0 else math.nan
    return -value if half & 0x8000 else value
