"""The physical planner: rewrite selection, fallback rules, and
optimized-vs-reference result parity (docs/PLANNER.md).

Every test that runs a query checks ``optimize=True`` against
``optimize=False`` — the reference Core semantics — so a planner bug
shows up as a parity failure, not just a wrong literal.
"""

from __future__ import annotations

import pytest

from repro import Database, EvalConfig, TypeCheckError, to_python
from repro.core.planner import (
    free_names,
    is_relocatable,
    plan_block,
    split_conjuncts,
)
from repro.datamodel.equality import deep_equals
from repro.datamodel.values import Bag
from repro.syntax.parser import parse_expression


def both_ways(db: Database, query: str, **kwargs):
    """Run optimized and reference; assert parity; return the result."""
    optimized = db.execute(query, optimize=True, **kwargs)
    reference = db.execute(query, optimize=False, **kwargs)
    left = Bag(list(optimized)) if isinstance(optimized, (list, Bag)) else optimized
    right = Bag(list(reference)) if isinstance(reference, (list, Bag)) else reference
    assert deep_equals(left, right), (
        f"planner parity violation for {query!r}:\n"
        f"  optimized: {to_python(optimized)!r}\n"
        f"  reference: {to_python(reference)!r}"
    )
    return optimized


@pytest.fixture
def join_db() -> Database:
    db = Database()
    db.set("users", [{"uid": i, "dept": i % 3, "name": f"u{i}"} for i in range(8)])
    db.set(
        "orders",
        [{"oid": i, "user_id": i % 10, "total": i * 10} for i in range(12)],
    )
    db.set("depts", [{"dno": 0, "dname": "eng"}, {"dno": 1, "dname": "ops"}])
    return db


# =========================================================================
# Plan selection
# =========================================================================


class TestPlanSelection:
    def plan_for(self, db, query, **config_kwargs):
        core = db.compile(query)
        config = EvalConfig(**config_kwargs)
        return plan_block(core.body, config)

    def test_equi_join_hashes(self, join_db):
        plan = self.plan_for(
            join_db,
            "SELECT u.uid AS uid FROM users AS u "
            "JOIN orders AS o ON o.user_id = u.uid",
        )
        assert plan is not None
        assert any("hash-equi-join" in r for r in plan.rewrites)

    def test_correlated_right_side_stays_nested_loop(self, join_db):
        join_db.set("emp", [{"id": 1, "projects": [{"name": "p"}]}])
        plan = self.plan_for(
            join_db,
            "SELECT e.id AS id FROM emp AS e "
            "JOIN e.projects AS p ON p.name = 'p'",
        )
        # Lateral right side: no hash join may fire on this item.
        assert plan is None or not any(
            "hash-equi-join" in r for r in plan.rewrites
        )

    def test_non_equi_on_materializes(self, join_db):
        plan = self.plan_for(
            join_db,
            "SELECT u.uid AS uid FROM users AS u "
            "JOIN orders AS o ON o.total > u.uid",
        )
        assert plan is not None
        assert any("materialize-right" in r for r in plan.rewrites)
        assert not any("hash-equi-join" in r for r in plan.rewrites)

    def test_strict_mode_never_plans(self, join_db):
        plan = self.plan_for(
            join_db,
            "SELECT u.uid AS uid FROM users AS u "
            "JOIN orders AS o ON o.user_id = u.uid",
            typing_mode="strict",
        )
        assert plan is None

    def test_optimize_off_never_plans(self, join_db):
        plan = self.plan_for(
            join_db,
            "SELECT u.uid AS uid FROM users AS u "
            "JOIN orders AS o ON o.user_id = u.uid",
            optimize=False,
        )
        assert plan is None

    def test_pushdown_skipped_with_let(self, join_db):
        core = join_db.compile(
            "FROM users AS u LET d = u.dept WHERE u.dept = 1 AND d = 1 "
            "SELECT u.uid AS uid"
        )
        plan = plan_block(core.body, EvalConfig())
        # LET evaluates between FROM and WHERE: nothing may be pushed.
        assert plan is None or plan.residual_where is core.body.where

    def test_single_scan_without_filter_uses_reference(self, join_db):
        plan = self.plan_for(join_db, "SELECT u.uid AS uid FROM users AS u")
        assert plan is None


# =========================================================================
# Result parity across the fallback rules (satellite: planner fallback)
# =========================================================================


class TestFallbackParity:
    def test_correlated_lateral_right_side(self, join_db):
        join_db.set(
            "emp",
            [
                {"id": 1, "projects": [{"name": "a"}, {"name": "b"}]},
                {"id": 2, "projects": []},
                {"id": 3},
            ],
        )
        result = both_ways(
            join_db,
            "SELECT e.id AS id, p.name AS name FROM emp AS e "
            "LEFT JOIN e.projects AS p ON p.name != 'b'",
        )
        # emp 1 matches only 'a'; emp 2 (empty) and emp 3 (missing) pad.
        assert len(result) == 3

    def test_non_equi_on(self, join_db):
        both_ways(
            join_db,
            "SELECT u.uid AS uid, o.oid AS oid FROM users AS u "
            "JOIN orders AS o ON o.total > u.uid * 10",
        )

    def test_on_referencing_missing_fields(self, join_db):
        join_db.set(
            "left_t",
            [{"k": 1}, {"k": None}, {"x": "no k attribute"}, {"k": 2}],
        )
        join_db.set("right_t", [{"k": 1}, {"k": None}, {"other": True}])
        for kind in ("JOIN", "LEFT JOIN"):
            result = both_ways(
                join_db,
                f"SELECT l.k AS lk, r.k AS rk FROM left_t AS l "
                f"{kind} right_t AS r ON l.k = r.k",
            )
            # NULL/MISSING keys never match (Core equality).
            matches = [v for v in to_python(result) if v["rk"] is not None]
            assert all(m["lk"] == m["rk"] for m in matches)

    def test_strict_mode_errors_match_reference(self, join_db):
        join_db.set("typed", [{"k": 1}, {"k": "one"}])
        query = (
            "SELECT l.k AS k FROM typed AS l JOIN typed AS r ON l.k < r.k"
        )
        with pytest.raises(TypeCheckError):
            join_db.execute(query, typing_mode="strict", optimize=False)
        with pytest.raises(TypeCheckError):
            join_db.execute(query, typing_mode="strict", optimize=True)

    def test_strict_mode_results_match_when_clean(self, join_db):
        both_ways(
            join_db,
            "SELECT u.uid AS uid, o.oid AS oid FROM users AS u "
            "JOIN orders AS o ON o.user_id = u.uid",
            typing_mode="strict",
        )

    def test_cross_join_and_comma_cross_product(self, join_db):
        both_ways(
            join_db,
            "SELECT u.uid AS uid, d.dno AS dno FROM users AS u "
            "CROSS JOIN depts AS d",
        )
        both_ways(
            join_db,
            "SELECT u.uid AS uid, d.dno AS dno FROM users AS u, depts AS d "
            "WHERE u.dept = d.dno AND d.dname = 'eng' AND u.uid < 5",
        )

    def test_composite_and_residual_on(self, join_db):
        join_db.set(
            "a_t", [{"x": i % 2, "y": i % 3, "z": i} for i in range(9)]
        )
        join_db.set(
            "b_t", [{"x": i % 2, "y": i % 3, "w": i} for i in range(9)]
        )
        both_ways(
            join_db,
            "SELECT a.z AS z, b.w AS w FROM a_t AS a JOIN b_t AS b "
            "ON a.x = b.x AND a.y = b.y AND a.z < b.w",
        )

    def test_left_join_where_on_right_not_pushed_below_padding(self, join_db):
        result = both_ways(
            join_db,
            "SELECT u.uid AS uid, o.oid AS oid FROM users AS u "
            "LEFT JOIN orders AS o ON o.user_id = u.uid "
            "WHERE o.oid IS NOT NULL",
        )
        assert all(v["oid"] is not None for v in to_python(result))

    def test_heterogeneous_join_keys(self, join_db):
        join_db.set(
            "mixed_l", [{"k": 1}, {"k": "1"}, {"k": True}, {"k": [1, 2]}]
        )
        join_db.set(
            "mixed_r", [{"k": 1.0}, {"k": "1"}, {"k": [1, 2]}, {"k": False}]
        )
        result = both_ways(
            join_db,
            "SELECT l.k AS lk, r.k AS rk FROM mixed_l AS l "
            "JOIN mixed_r AS r ON l.k = r.k",
        )
        # 1 = 1.0, '1' = '1', [1,2] = [1,2]; booleans differ.
        assert len(result) == 3


# =========================================================================
# LEFT-join padding (satellite: 3-way LEFT join regression)
# =========================================================================


class TestLeftJoinPadding:
    def test_three_way_left_join_pads_all_downstream_vars(self):
        db = Database()
        db.set("a", [{"x": 1}, {"x": 2}])
        db.set("b", [{"x": 1, "y": 10}])
        db.set("c", [{"y": 10, "z": 100}])
        query = (
            "SELECT a.x AS x, b.y AS y, c.z AS z FROM a AS a "
            "LEFT JOIN b AS b ON a.x = b.x "
            "LEFT JOIN c AS c ON b.y = c.y"
        )
        result = to_python(both_ways(db, query))
        assert sorted(result, key=lambda v: v["x"]) == [
            {"x": 1, "y": 10, "z": 100},
            {"x": 2, "y": None, "z": None},
        ]

    def test_three_way_left_join_with_at_alias_padding(self):
        db = Database()
        db.set("a", [{"x": 1}, {"x": 2}])
        db.set("b", [{"x": 1, "y": 10}])
        query = (
            "SELECT a.x AS x, b.y AS y, pos AS pos FROM a AS a "
            "LEFT JOIN b AS b AT pos ON a.x = b.x"
        )
        result = to_python(both_ways(db, query))
        assert {"x": 2, "y": None, "pos": None} in result

    def test_left_join_unpivot_right_padding(self):
        db = Database()
        db.set("t", [{"m": {"a": 1}}, {"m": {}}])
        query = (
            "SELECT v AS v, k AS k FROM t AS t "
            "LEFT JOIN UNPIVOT t.m AS v AT k ON TRUE"
        )
        result = to_python(both_ways(db, query))
        assert {"v": None, "k": None} in result

    def test_hash_left_join_null_and_missing_keys_pad(self):
        db = Database()
        db.load_value(
            "l", "<< {'k': 1}, {'k': null}, {'nok': 1} >>"
        )
        db.set("r", [{"k": 1, "v": "hit"}])
        result = to_python(
            both_ways(
                db,
                "SELECT l.k AS k, r.v AS v FROM l AS l "
                "LEFT JOIN r AS r ON l.k = r.k",
            )
        )
        assert sum(1 for row in result if row["v"] is None) == 2
        assert sum(1 for row in result if row["v"] == "hit") == 1


# =========================================================================
# Pushdown parity
# =========================================================================


class TestPushdown:
    def test_single_variable_conjuncts(self, join_db):
        both_ways(
            join_db,
            "SELECT u.uid AS uid, o.oid AS oid FROM users AS u, orders AS o "
            "WHERE u.dept = 1 AND o.total >= 30 AND u.uid = o.user_id",
        )

    def test_where_only_missing_semantics(self, join_db):
        join_db.set("dirty", [{"v": 1}, {"v": "x"}, {}, {"v": None}])
        # v > 0 is MISSING/NULL on dirty rows — excluded both ways.
        both_ways(
            join_db,
            "SELECT d.v AS v FROM dirty AS d, depts AS x WHERE d.v > 0",
        )

    def test_unknown_name_conjunct_not_pushed(self, join_db):
        core = join_db.compile(
            "SELECT u.uid AS uid FROM users AS u, depts AS d "
            "WHERE unknown_name = 1 AND u.uid = 0"
        )
        plan = plan_block(core.body, EvalConfig())
        assert plan is not None
        assert plan.residual_where is not None
        assert "unknown_name" in free_names(plan.residual_where)


# =========================================================================
# Analysis helpers
# =========================================================================


class TestAnalyses:
    def test_split_conjuncts(self):
        expr = parse_expression("a = 1 AND b = 2 AND (c OR d)")
        assert len(split_conjuncts(expr)) == 3

    def test_free_names_is_conservative(self):
        expr = parse_expression("x.a + (SELECT VALUE s FROM t AS s)[0]")
        names = free_names(expr)
        assert {"x", "t"} <= names  # inner alias may be included too

    def test_relocatable_rejects_parameters_and_subqueries(self):
        assert is_relocatable(parse_expression("x.a = 1"))
        assert not is_relocatable(parse_expression("x.a = ?"))
        assert not is_relocatable(
            parse_expression("x.a IN (SELECT VALUE t.b FROM t AS t)")
        )
        assert not is_relocatable(parse_expression("UNKNOWN_FN(x.a) = 1"))


# =========================================================================
# EXPLAIN
# =========================================================================


class TestExplain:
    def test_explain_plan_shows_operators_and_rewrites(self, join_db):
        text = join_db.explain_plan(
            "SELECT u.uid AS uid FROM users AS u "
            "JOIN orders AS o ON o.user_id = u.uid WHERE u.dept = 1"
        )
        assert "HashJoin[INNER]" in text
        assert "rewrites fired:" in text
        assert "predicate-pushdown" in text

    def test_explain_plan_reference_fallback(self, join_db):
        text = join_db.explain_plan("SELECT u.uid AS uid FROM users AS u")
        assert "reference pipeline" in text

    def test_explain_plan_strict_mode(self, join_db):
        text = join_db.explain_plan(
            "SELECT u.uid AS uid FROM users AS u "
            "JOIN orders AS o ON o.user_id = u.uid",
            typing_mode="strict",
        )
        assert "strict typing" in text

    def test_explain_plan_expression_body(self, join_db):
        text = join_db.explain_plan("1 + 1")
        assert "not a single query block" in text
