"""Deep equality and grouping keys."""

import pytest

from repro.datamodel.equality import deep_equals, group_key
from repro.datamodel.values import MISSING, Bag, Struct


class TestDeepEquals:
    def test_absent_values(self):
        assert deep_equals(None, None)
        assert deep_equals(MISSING, MISSING)
        assert not deep_equals(None, MISSING)
        assert not deep_equals(MISSING, 0)

    def test_numbers_unify_int_float(self):
        assert deep_equals(1, 1.0)
        assert not deep_equals(1, 2)

    def test_booleans_are_not_numbers(self):
        assert not deep_equals(True, 1)
        assert not deep_equals(False, 0)
        assert deep_equals(True, True)

    def test_strings(self):
        assert deep_equals("a", "a")
        assert not deep_equals("a", "A")
        assert not deep_equals("1", 1)

    def test_arrays_ordered(self):
        assert deep_equals([1, 2], [1, 2])
        assert not deep_equals([1, 2], [2, 1])
        assert not deep_equals([1], [1, 1])

    def test_bags_unordered(self):
        assert deep_equals(Bag([1, 2]), Bag([2, 1]))
        assert not deep_equals(Bag([1, 1]), Bag([1, 2]))

    def test_array_is_not_bag(self):
        assert not deep_equals([1], Bag([1]))

    def test_structs_unordered(self):
        assert deep_equals(
            Struct([("a", 1), ("b", 2)]), Struct([("b", 2), ("a", 1)])
        )

    def test_structs_with_duplicates(self):
        assert deep_equals(
            Struct([("a", 1), ("a", 2)]), Struct([("a", 2), ("a", 1)])
        )
        assert not deep_equals(
            Struct([("a", 1), ("a", 1)]), Struct([("a", 1), ("a", 2)])
        )

    def test_nested_composition(self):
        left = Bag([Struct({"xs": [1, Bag(["a"])]})])
        right = Bag([Struct({"xs": [1, Bag(["a"])]})])
        assert deep_equals(left, right)

    def test_rejects_foreign_types(self):
        with pytest.raises(TypeError):
            deep_equals(object(), object())


class TestGroupKey:
    def test_key_equality_iff_deep_equality(self):
        values = [
            None,
            MISSING,
            True,
            False,
            0,
            1,
            1.0,
            "1",
            "a",
            [1],
            [1, 2],
            Bag([1, 2]),
            Bag([2, 1]),
            Struct({"a": 1}),
            Struct({"a": 2}),
        ]
        for left in values:
            for right in values:
                assert (group_key(left) == group_key(right)) == deep_equals(
                    left, right
                ), (left, right)

    def test_keys_are_hashable(self):
        for value in [None, MISSING, 1, "a", [1, [2]], Bag([Struct({"a": 1})])]:
            hash(group_key(value))

    def test_int_float_same_key(self):
        assert group_key(1) == group_key(1.0)
        assert hash(group_key(1)) == hash(group_key(1.0))

    def test_bool_and_int_differ(self):
        assert group_key(True) != group_key(1)

    def test_bag_key_is_permutation_invariant(self):
        assert group_key(Bag(["b", "a"])) == group_key(Bag(["a", "b"]))
