"""Execution tracing for ``EXPLAIN ANALYZE``.

An :class:`ExecTracer` rides along one query execution and accumulates,
per physical operator (:mod:`repro.core.plan_ops`), per reference-path
FROM item (the nested-loop pipeline of :mod:`repro.core.evaluator`) and
per clause-pipeline stage:

* **invocations** — how many times the operator produced its bindings
  (a lateral right side runs once per left binding; everything else
  typically once per block evaluation);
* **rows in / rows out** — binding rows before and after the operator's
  attached filters (for stages: stream size entering/leaving the stage);
* **wall time** — inclusive of children, as is conventional for
  ``EXPLAIN ANALYZE`` output.

On the streaming clause pipeline (docs/PLANNER.md) rows are tallied
incrementally as each one crosses a generator boundary and the
accumulated statistics are flushed when the stream closes, so counts
stay exact under early termination — a ``LIMIT 4`` records the four
rows that flowed, because the rest were never produced.  A stage's
wall time includes the time spent pulling from the stages upstream of
it (the streaming analogue of "inclusive of children").

An ``ExecTracer`` may additionally carry a
:class:`~repro.observability.spans.TraceContext`; the same choke points
that feed the aggregate statistics then also record structured spans
(with parent links), which is how ``db.trace`` / ``--trace-out`` get
per-operator granularity without a second instrumentation layer.

Tracing is strictly opt-in: the evaluator's hot paths check a single
``tracer is None`` and pay nothing when observability is off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.syntax import ast

if TYPE_CHECKING:  # pragma: no cover
    from repro.observability.spans import TraceContext


@dataclass
class OpStats:
    """Accumulated runtime statistics for one operator or stage."""

    label: str
    invocations: int = 0
    rows_in: int = 0
    rows_out: int = 0
    time_s: float = 0.0

    def add(self, rows_in: int, rows_out: int, elapsed_s: float) -> None:
        self.invocations += 1
        self.rows_in += rows_in
        self.rows_out += rows_out
        self.time_s += elapsed_s

    def suffix(self, show_rows_in: bool = True) -> str:
        """The annotation appended to a plan line."""
        parts = [f"calls={self.invocations}"]
        if show_rows_in and self.rows_in != self.rows_out:
            parts.append(f"rows_in={self.rows_in}")
        parts.append(f"rows_out={self.rows_out}")
        parts.append(f"time={format_seconds(self.time_s)}")
        return "  (" + " ".join(parts) + ")"


def format_seconds(seconds: float) -> str:
    """Human-scale wall time: seconds, milliseconds or microseconds."""
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 0.001:
        return f"{seconds * 1000:.2f}ms"
    return f"{seconds * 1_000_000:.0f}us"


def q_error(estimate: float, actual: float) -> float:
    """The q-error of a cardinality estimate: ``max(est/act, act/est)``.

    Both sides are clamped to 1 first (the standard convention), so an
    estimate of 0.3 rows against an empty actual is a perfect 1.0, not
    a division by zero.
    """
    estimate = max(float(estimate), 1.0)
    actual = max(float(actual), 1.0)
    return max(estimate / actual, actual / estimate)


def format_rows(rows: float) -> str:
    """A row estimate as plan-line text (integers stay integral)."""
    if rows >= 10 or rows == int(rows):
        return str(int(round(rows)))
    return f"{rows:.1f}"


def estimate_suffix(
    estimate: Optional[float], actual: int, worst: bool = False
) -> str:
    """The ``est= / actual= / q-err=`` annotation for one plan line.

    ``actual`` is the operator's observed output rows; ``estimate`` of
    None renders ``est=?`` (the planner had no statistics for this
    operator).  ``worst`` flags the largest misestimate of the plan.
    """
    if estimate is None:
        return f"  (est=? actual={actual})"
    text = (
        f"  (est={format_rows(estimate)} actual={actual} "
        f"q-err={q_error(estimate, actual):.2f}"
    )
    if worst:
        text += " ← worst misestimate"
    return text + ")"


class ExecTracer:
    """Collects per-operator and per-stage statistics for one execution."""

    def __init__(
        self, trace: Optional["TraceContext"] = None, timing: bool = True
    ) -> None:
        #: Whether per-row wall clocks run.  ``timing=False`` is the
        #: query store's cardinality-feedback mode: operators count rows
        #: in/out but skip the per-row ``perf_counter`` reads and the
        #: streaming stage tallies, so a feedback-sampled execution pays
        #: close to nothing beyond the untraced path.
        self.timing = timing
        #: Physical operators, keyed by id(op); the op is kept alive
        #: alongside its stats so id() keys cannot be reused.
        self._op_stats: Dict[int, Tuple[Any, OpStats]] = {}
        #: Reference-path FROM items, keyed by id(ast node).
        self._item_stats: Dict[int, Tuple[ast.FromItem, OpStats]] = {}
        #: Clause-pipeline stages, keyed by (id(block), stage name), in
        #: first-recorded order.
        self._stage_stats: Dict[Tuple[int, str], Tuple[Any, OpStats]] = {}
        #: Optional structured-span collector; when set, the evaluator's
        #: instrumentation points record spans alongside the aggregates.
        self.trace = trace
        #: Physical plans actually executed, keyed by id(block node),
        #: so EXPLAIN ANALYZE renders the very operator objects the
        #: statistics above were recorded against.
        self._plans: Dict[int, Tuple[Any, Any]] = {}

    # -- recording -----------------------------------------------------

    def record_op(
        self, op: Any, rows_in: int, rows_out: int, elapsed_s: float
    ) -> None:
        entry = self._op_stats.get(id(op))
        if entry is None:
            entry = (op, OpStats(label=op.describe()))
            self._op_stats[id(op)] = entry
        entry[1].add(rows_in, rows_out, elapsed_s)

    def merge_op(
        self,
        op: Any,
        invocations: int,
        rows_in: int,
        rows_out: int,
        elapsed_s: float,
    ) -> None:
        """Fold a worker tracer's tally into this tracer, preserving the
        worker-side invocation count.  ``record_op`` counts each call as
        one invocation, so merging N workers through it would sum their
        rows but report N invocations regardless of how many each worker
        made — breaking tally parity with the serial run."""
        entry = self._op_stats.get(id(op))
        if entry is None:
            entry = (op, OpStats(label=op.describe()))
            self._op_stats[id(op)] = entry
        stats = entry[1]
        stats.invocations += invocations
        stats.rows_in += rows_in
        stats.rows_out += rows_out
        stats.time_s += elapsed_s

    def record_item(
        self, item: ast.FromItem, rows_out: int, elapsed_s: float
    ) -> None:
        entry = self._item_stats.get(id(item))
        if entry is None:
            entry = (item, OpStats(label=describe_from_item(item)))
            self._item_stats[id(item)] = entry
        entry[1].add(rows_out, rows_out, elapsed_s)

    def record_stage(
        self,
        block: Any,
        stage: str,
        rows_in: int,
        rows_out: int,
        elapsed_s: float,
    ) -> None:
        key = (id(block), stage)
        entry = self._stage_stats.get(key)
        if entry is None:
            entry = (block, OpStats(label=stage))
            self._stage_stats[key] = entry
        entry[1].add(rows_in, rows_out, elapsed_s)

    def register_plan(self, block: Any, plan: Any) -> None:
        self._plans[id(block)] = (block, plan)

    # -- lookup --------------------------------------------------------

    def plan_for(self, block: Any) -> Optional[Any]:
        entry = self._plans.get(id(block))
        return entry[1] if entry is not None else None

    def op_stats(self, op: Any) -> Optional[OpStats]:
        entry = self._op_stats.get(id(op))
        return entry[1] if entry is not None else None

    def item_stats(self, item: ast.FromItem) -> Optional[OpStats]:
        entry = self._item_stats.get(id(item))
        return entry[1] if entry is not None else None

    def stages_for(self, block: Any) -> List[OpStats]:
        return [
            stats
            for (block_id, __), (___, stats) in self._stage_stats.items()
            if block_id == id(block)
        ]

    # -- rendering the reference (nested-loop) FROM tree ---------------

    def reference_lines(
        self, items: List[ast.FromItem], indent: int = 1
    ) -> List[str]:
        """Annotated plan lines for a reference-pipeline FROM clause."""
        lines: List[str] = []
        for item in items:
            lines.extend(self._item_lines(item, indent))
        return lines

    def _item_lines(self, item: ast.FromItem, indent: int) -> List[str]:
        line = "  " * indent + describe_from_item(item)
        stats = self.item_stats(item)
        if stats is not None:
            line += stats.suffix(show_rows_in=False)
        lines = [line]
        if isinstance(item, ast.FromJoin):
            lines.extend(self._item_lines(item.left, indent + 1))
            lines.extend(self._item_lines(item.right, indent + 1))
        return lines


def describe_from_item(item: ast.FromItem) -> str:
    """A one-line label for a reference-path FROM item, matching the
    vocabulary of the physical operators' ``describe()``."""
    from repro.syntax.printer import print_ast

    if isinstance(item, ast.FromCollection):
        at = f" AT {item.at_alias}" if item.at_alias else ""
        return f"Scan {print_ast(item.expr)} AS {item.alias}{at}"
    if isinstance(item, ast.FromUnpivot):
        return (
            f"Unpivot {print_ast(item.expr)} AS {item.value_alias} "
            f"AT {item.at_alias}"
        )
    if isinstance(item, ast.FromJoin):
        on = f" ON {print_ast(item.on)}" if item.on is not None else ""
        return f"NestedLoopJoin[{item.kind}] (reference){on}"
    return type(item).__name__
