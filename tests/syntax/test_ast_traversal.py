"""AST traversal infrastructure (children / walk / transform)."""

from repro.syntax import ast
from repro.syntax.parser import parse, parse_expression


class TestChildrenAndWalk:
    def test_children_cover_nested_lists(self):
        query = parse("SELECT a.x AS x, a.y AS y FROM t AS a WHERE a.x > 1")
        block = query.body
        kinds = {type(child).__name__ for child in block.children()}
        assert "SelectList" in kinds
        assert "FromCollection" in kinds
        assert "Binary" in kinds

    def test_walk_is_preorder_and_complete(self):
        expr = parse_expression("1 + f(2, [3])")
        nodes = list(expr.walk())
        assert nodes[0] is expr
        literals = [n.value for n in nodes if isinstance(n, ast.Literal)]
        assert sorted(literals) == [1, 2, 3]

    def test_walk_traverses_tuples_in_fields(self):
        expr = parse_expression("CASE WHEN a THEN 1 WHEN b THEN 2 END")
        names = [n.name for n in expr.walk() if isinstance(n, ast.VarRef)]
        assert names == ["a", "b"]


class TestTransform:
    def test_identity_transform_shares_nodes(self):
        expr = parse_expression("a.b + c")
        result = expr.transform(lambda node: node)
        assert result is expr

    def test_bottom_up_replacement(self):
        expr = parse_expression("a + a")

        def rename(node):
            if isinstance(node, ast.VarRef):
                return ast.VarRef(name="z")
            return node

        renamed = expr.transform(rename)
        assert all(
            n.name == "z" for n in renamed.walk() if isinstance(n, ast.VarRef)
        )
        # The original is untouched (persistent trees).
        assert all(
            n.name == "a" for n in expr.walk() if isinstance(n, ast.VarRef)
        )

    def test_transform_rebuilds_minimal_spine(self):
        expr = parse_expression("(a + b) * (c + d)")
        target = next(
            n for n in expr.walk() if isinstance(n, ast.VarRef) and n.name == "d"
        )

        def replace(node):
            if node is target:
                return ast.Literal(value=0)
            return node

        rebuilt = expr.transform(replace)
        # Left subtree untouched → shared by identity.
        assert rebuilt.left is expr.left
        assert rebuilt.right is not expr.right
