"""Resource limits: runaway queries stop with ResourceExhausted."""

import pytest

from repro import Database
from repro.config import EvalConfig
from repro.errors import ResourceExhausted


@pytest.fixture
def db():
    database = Database()
    database.set("r", [{"k": i % 10, "v": i} for i in range(100)])
    return database


CROSS_3 = "SELECT a.v FROM r AS a, r AS b, r AS c"
CROSS_4 = "SELECT a.v FROM r AS a, r AS b, r AS c, r AS d"


class TestMaxRows:
    def test_cross_product_stops_on_optimized_path(self, db):
        with pytest.raises(ResourceExhausted) as excinfo:
            db.execute(CROSS_3, max_rows=5000)
        error = excinfo.value
        assert error.kind == "max_rows"
        # Cooperative granularity: the breach surfaces within one
        # binding batch of the limit, not after the full million rows.
        assert 5000 < error.rows_produced < 5000 + 200

    def test_cross_product_stops_on_reference_path(self, db):
        with pytest.raises(ResourceExhausted) as excinfo:
            db.execute(CROSS_3, max_rows=5000, optimize=False)
        assert excinfo.value.kind == "max_rows"

    def test_within_limit_succeeds(self, db):
        result = db.execute("SELECT VALUE a.v FROM r AS a", max_rows=1000)
        assert len(result) == 100

    def test_hash_join_ticks_the_governor(self, db):
        db.set("s", [{"k": i % 10} for i in range(1000)])
        # 100 * 100 matching pairs per key decade explode past the cap.
        with pytest.raises(ResourceExhausted):
            db.execute(
                "SELECT a.v FROM r AS a JOIN s AS s ON a.k = s.k",
                max_rows=2000,
            )


class TestTimeout:
    def test_timeout_stops_instead_of_hanging(self, db):
        with pytest.raises(ResourceExhausted) as excinfo:
            db.execute(CROSS_4, timeout_s=0.05)
        error = excinfo.value
        assert error.kind == "timeout"
        # It stopped shortly after the deadline, far below the time the
        # 10^8-binding cross product would need.
        assert error.elapsed_s < 5.0

    def test_timeout_on_reference_path(self, db):
        with pytest.raises(ResourceExhausted) as excinfo:
            db.execute(CROSS_4, timeout_s=0.05, optimize=False)
        assert excinfo.value.kind == "timeout"

    def test_fast_query_unaffected(self, db):
        assert len(db.execute("SELECT VALUE a.v FROM r AS a", timeout_s=30)) == 100


class TestMaxRecursion:
    def test_nested_subqueries_stop(self, db):
        db.set("one", [1])
        nested = "SELECT VALUE (SELECT VALUE (SELECT VALUE x FROM one AS x) FROM one AS y) FROM one AS z"
        with pytest.raises(ResourceExhausted) as excinfo:
            db.execute(nested, max_recursion=2)
        assert excinfo.value.kind == "max_recursion"
        # The same query is fine with a deep-enough budget.
        db.execute(nested, max_recursion=10)


class TestDatabaseLevelLimits:
    def test_limits_apply_to_every_query(self):
        db = Database(max_rows=50)
        db.set("r", [{"v": i} for i in range(100)])
        with pytest.raises(ResourceExhausted):
            db.execute("SELECT VALUE a.v FROM r AS a")

    def test_per_query_override_tightens(self, db):
        # No database-level limit; the per-query one still applies.
        with pytest.raises(ResourceExhausted):
            db.execute("SELECT VALUE a.v FROM r AS a", max_rows=10)

    def test_error_carries_partial_progress(self, db):
        with pytest.raises(ResourceExhausted) as excinfo:
            db.execute(CROSS_3, max_rows=100)
        assert excinfo.value.rows_produced > 0
        assert excinfo.value.elapsed_s >= 0.0


class TestConfigValidation:
    def test_rejects_nonpositive_timeout(self):
        with pytest.raises(ValueError):
            EvalConfig(timeout_s=0)

    def test_rejects_negative_max_rows(self):
        with pytest.raises(ValueError):
            EvalConfig(max_rows=-1)

    def test_rejects_zero_max_recursion(self):
        with pytest.raises(ValueError):
            EvalConfig(max_recursion=0)

    def test_has_limits(self):
        assert not EvalConfig().has_limits
        assert EvalConfig(max_rows=10).has_limits
        assert EvalConfig(timeout_s=1.5).has_limits
        assert EvalConfig(max_recursion=4).has_limits
