"""Environment chain-map unit tests."""

import pytest

from repro.core.environment import EMPTY, Environment, Unbound


class TestLookup:
    def test_bind_and_lookup(self):
        env = Environment().bind("x", 1)
        assert env.lookup("x") == 1

    def test_unbound_raises_with_name(self):
        with pytest.raises(Unbound) as info:
            Environment().lookup("zzz")
        assert info.value.name == "zzz"

    def test_inner_scope_shadows(self):
        env = Environment({"x": 1}).bind("x", 2)
        assert env.lookup("x") == 2

    def test_parent_scopes_visible(self):
        env = Environment({"a": 1}).extend({"b": 2}).extend({"c": 3})
        assert env.lookup("a") == 1
        assert env.lookup("b") == 2

    def test_extend_does_not_mutate_parent(self):
        parent = Environment({"a": 1})
        parent.extend({"a": 99})
        assert parent.lookup("a") == 1

    def test_sibling_isolation(self):
        parent = Environment({"a": 1})
        left = parent.bind("x", "l")
        right = parent.bind("x", "r")
        assert left.lookup("x") == "l"
        assert right.lookup("x") == "r"

    def test_is_bound(self):
        env = Environment({"a": 1})
        assert env.is_bound("a")
        assert not env.is_bound("b")

    def test_none_and_missing_are_bindable(self):
        from repro.datamodel.values import MISSING

        env = Environment().bind("n", None).bind("m", MISSING)
        assert env.lookup("n") is None
        assert env.lookup("m") is MISSING


class TestIntrospection:
    def test_local_names(self):
        env = Environment({"a": 1}).extend({"b": 2, "c": 3})
        assert sorted(env.local_names()) == ["b", "c"]

    def test_flatten_inner_wins(self):
        env = Environment({"a": 1, "b": 2}).extend({"a": 9})
        assert env.flatten() == {"a": 9, "b": 2}

    def test_empty_constant(self):
        assert EMPTY.flatten() == {}

    def test_repr(self):
        assert "x" in repr(Environment({"x": 1}))
