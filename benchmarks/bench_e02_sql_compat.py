"""E2 — SQL compatibility (paper tenet 1).

"Existing SQL queries should continue to work, with identical syntax and
semantics, in SQL query processors that are extended to provide SQL++."

The claim's shape: for every SQL query in the suite, the SQL++ engine
returns *exactly* the strict SQL-92 baseline's answer.  The bench
asserts that row-for-row at three scales and times both engines on the
same workload, so the cost of the extra generality is visible.
"""

import pytest

from repro import Database
from repro.baselines.sql92 import SQL92Database
from repro.datamodel.convert import from_python
from repro.datamodel.values import Bag
from repro.workloads import emp_flat

from conftest import assert_same_bag

SQL_QUERIES = {
    "filter": "SELECT e.name, e.salary FROM emp AS e WHERE e.salary > 150000",
    "group": "SELECT e.deptno, AVG(e.salary) AS avgsal, COUNT(*) AS n "
    "FROM emp AS e GROUP BY e.deptno",
    "order-limit": "SELECT e.name FROM emp AS e ORDER BY name LIMIT 10",
    "case": "SELECT e.name, CASE WHEN e.salary > 120000 THEN 'hi' ELSE 'lo' END AS b "
    "FROM emp AS e",
}

SIZES = [1_000, 5_000, 20_000]


def engines(size):
    rows = emp_flat(size, seed=2)
    sql92 = SQL92Database()
    sql92.create_table("emp", ["id", "name", "title", "deptno", "salary"])
    sql92.insert("emp", rows)
    sqlpp = Database()
    sqlpp.set("emp", rows)
    return sql92, sqlpp


@pytest.mark.benchmark(group="E2-sqlpp")
@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("name", sorted(SQL_QUERIES))
def test_sqlpp_engine(benchmark, name, size):
    sql92, sqlpp = engines(size)
    query = SQL_QUERIES[name]

    # The compatibility assertion: identical answers.
    assert_same_bag(sqlpp.execute(query), Bag(from_python(sql92.execute(query))))

    benchmark(lambda: sqlpp.execute(query))


@pytest.mark.benchmark(group="E2-sql92-baseline")
@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("name", sorted(SQL_QUERIES))
def test_sql92_baseline(benchmark, name, size):
    sql92, __ = engines(size)
    benchmark(lambda: sql92.execute(SQL_QUERIES[name]))
