"""EXPLAIN ANALYZE: annotated plans on both execution paths."""

import re

import pytest

from repro import Database


@pytest.fixture
def join_db():
    db = Database()
    db.set("r", [{"k": i % 10, "v": i} for i in range(100)])
    db.set("s", [{"k": i, "name": f"n{i}"} for i in range(10)])
    return db


JOIN_QUERY = (
    "SELECT r.v AS v, s.name AS name "
    "FROM r AS r JOIN s AS s ON r.k = s.k WHERE r.v > 50"
)

STATS = re.compile(r"\(calls=\d+ (rows_in=\d+ )?rows_out=\d+ time=[\d.]+[mu]?s\)")


class TestOptimizedPath:
    def test_join_operators_carry_stats(self, join_db):
        report = join_db.explain_analyze(JOIN_QUERY)
        hash_join = next(
            line for line in report.splitlines() if "HashJoin" in line
        )
        assert STATS.search(hash_join), hash_join
        # Both scans are annotated too, with real cardinalities.
        scans = [line for line in report.splitlines() if "Scan" in line]
        assert len(scans) == 2
        assert all(STATS.search(line) for line in scans)
        assert "rows_in=100" in next(s for s in scans if "AS r" in s)

    def test_stage_and_phase_sections(self, join_db):
        report = join_db.explain_analyze(JOIN_QUERY)
        assert "stages:" in report
        assert "phases:" in report
        assert "rows returned: 49" in report
        assert "execute:" in report


class TestReferencePath:
    def test_nested_loop_tree_carries_stats(self, join_db):
        report = join_db.explain_analyze(JOIN_QUERY, optimize=False)
        assert "plan: reference pipeline" in report
        nested = next(
            line for line in report.splitlines() if "NestedLoopJoin" in line
        )
        assert STATS.search(nested), nested
        # The lateral right side runs once per left binding.
        right_scan = next(
            line for line in report.splitlines() if "Scan s AS s" in line
        )
        assert "calls=100" in right_scan
        assert "rows returned: 49" in report

    def test_where_stage_visible_when_not_pushed_down(self, join_db):
        report = join_db.explain_analyze(JOIN_QUERY, optimize=False)
        where_line = next(
            line
            for line in report.splitlines()
            if line.strip().startswith("WHERE")
        )
        assert "rows_in=100" in where_line and "rows_out=49" in where_line


class TestAgreementAcrossPaths:
    def test_row_counts_match(self, join_db):
        optimized = join_db.explain_analyze(JOIN_QUERY)
        reference = join_db.explain_analyze(JOIN_QUERY, optimize=False)
        def row_count(text):
            return re.search(r"rows returned: (\d+)", text).group(1)

        assert row_count(optimized) == row_count(reference) == "49"


class TestEdgeShapes:
    def test_expression_only_query(self):
        report = Database().explain_analyze("1 + 1")
        assert "not a single query block" in report
        assert "phases:" in report

    def test_setop_body(self):
        db = Database()
        report = db.explain_analyze(
            "(SELECT VALUE x FROM [1] AS x) UNION ALL "
            "(SELECT VALUE x FROM [2] AS x)"
        )
        assert "not a single query block" in report

    def test_strict_mode_uses_reference_path(self, join_db):
        report = join_db.explain_analyze(JOIN_QUERY, typing_mode="strict")
        assert "plan: reference pipeline" in report
        assert "rows returned: 49" in report
