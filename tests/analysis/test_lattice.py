"""The abstract type lattice: join is a least upper bound, schema
seeding matches the schema's shape, and sampling-based seeding is
properly softened."""

from repro.analysis.lattice import (
    BOOLEAN_T,
    BOTTOM,
    CATEGORIES,
    MISSING_CAT,
    MISSING_T,
    NULL,
    NULL_T,
    NUMBER,
    NUMBER_T,
    STRING,
    STRING_T,
    TOP,
    AType,
    array_of,
    bag_of,
    category_of,
    from_schema,
    infer_literal,
    join,
    join_all,
    narrow,
    scalar,
    soften,
    tuple_of,
    widen,
)
from repro.datamodel.values import MISSING, Bag, Struct
from repro.schema.ddl import parse_schema


class TestJoin:
    def test_join_unions_categories(self):
        assert join(NUMBER_T, STRING_T).cats == frozenset(
            {NUMBER, STRING}
        )

    def test_bottom_is_identity(self):
        assert join(BOTTOM, NUMBER_T) == NUMBER_T
        assert join(NUMBER_T, BOTTOM) == NUMBER_T

    def test_join_is_commutative_on_cats(self):
        pairs = [
            (NUMBER_T, STRING_T),
            (TOP, NULL_T),
            (array_of(NUMBER_T), bag_of(STRING_T)),
            (tuple_of([("a", NUMBER_T)]), tuple_of([("b", STRING_T)])),
        ]
        for left, right in pairs:
            assert join(left, right).cats == join(right, left).cats

    def test_join_is_upper_bound(self):
        joined = join(scalar(NUMBER, NULL), BOOLEAN_T)
        assert scalar(NUMBER, NULL).cats <= joined.cats
        assert BOOLEAN_T.cats <= joined.cats

    def test_collection_elements_merge(self):
        joined = join(array_of(NUMBER_T), bag_of(STRING_T))
        assert joined.element is not None
        assert joined.element.cats == frozenset({NUMBER, STRING})

    def test_one_sided_tuple_attr_gains_missing(self):
        left = tuple_of([("a", NUMBER_T)], open=False)
        right = tuple_of([("b", STRING_T)], open=False)
        merged = join(left, right).attr_map()
        assert MISSING_CAT in merged["a"].cats
        assert MISSING_CAT in merged["b"].cats

    def test_join_all_empty_is_bottom(self):
        assert join_all([]) == BOTTOM


class TestWidenNarrow:
    def test_widen_adds(self):
        assert widen(NUMBER_T, NULL).cats == frozenset({NUMBER, NULL})

    def test_widen_noop_returns_same(self):
        assert widen(NUMBER_T, NUMBER) is NUMBER_T

    def test_narrow_removes(self):
        assert narrow(scalar(NUMBER, NULL), NULL) == NUMBER_T

    def test_narrow_preserves_shape(self):
        shaped = array_of(NUMBER_T)
        assert narrow(widen(shaped, NULL), NULL).element == NUMBER_T


class TestPredicates:
    def test_always_missing(self):
        assert MISSING_T.is_always_missing()
        assert not TOP.is_always_missing()

    def test_always_absent(self):
        assert scalar(NULL, MISSING_CAT).is_always_absent()
        assert not BOTTOM.is_always_absent()

    def test_describe_is_stable(self):
        assert scalar(NULL, NUMBER).describe() == "number|null"
        assert BOTTOM.describe() == "never"


class TestLiteralsAndValues:
    def test_infer_literal(self):
        assert infer_literal(None) == NULL_T
        assert infer_literal(True) == BOOLEAN_T
        assert infer_literal(3) == NUMBER_T
        assert infer_literal(2.5) == NUMBER_T
        assert infer_literal("x") == STRING_T

    def test_category_of_runtime_values(self):
        assert category_of(MISSING) == "missing"
        assert category_of(None) == "null"
        assert category_of(True) == "boolean"
        assert category_of(7) == "number"
        assert category_of("s") == "string"
        assert category_of([1]) == "array"
        assert category_of(Bag([1])) == "bag"
        assert category_of(Struct({"a": 1})) == "tuple"


class TestFromSchema:
    def test_closed_struct(self):
        abstract = from_schema(
            parse_schema("STRUCT<name STRING, age INT>")
        )
        assert abstract.only("tuple")
        assert not abstract.open
        assert abstract.attr_map()["name"] == STRING_T
        assert abstract.attr_map()["age"] == NUMBER_T

    def test_open_struct(self):
        abstract = from_schema(parse_schema("STRUCT<name STRING, ...>"))
        assert abstract.open

    def test_bag_element(self):
        abstract = from_schema(parse_schema("BAG<INT>"))
        assert abstract.only("bag")
        assert abstract.element == NUMBER_T

    def test_any_excludes_missing(self):
        abstract = from_schema(parse_schema("ANY"))
        assert abstract.cats == CATEGORIES - frozenset({MISSING_CAT})

    def test_soften_opens_every_tuple(self):
        closed = from_schema(
            parse_schema("BAG<STRUCT<a STRUCT<b INT>>>")
        )
        opened = soften(closed)
        assert opened.element is not None
        assert opened.element.open
        assert opened.element.attr_map()["a"].open

    def test_soften_preserves_categories(self):
        abstract = AType(cats=frozenset({NUMBER, NULL}))
        assert soften(abstract).cats == abstract.cats
