"""Parser unit tests across the whole grammar."""

import pytest

from repro.datamodel.values import MISSING
from repro.errors import ParseError
from repro.syntax import ast
from repro.syntax.parser import parse, parse_expression, parse_script


def block(query: ast.Query) -> ast.QueryBlock:
    assert isinstance(query.body, ast.QueryBlock)
    return query.body


class TestLiteralsAndPrimaries:
    def test_scalar_literals(self):
        assert parse_expression("42").value == 42
        assert parse_expression("'s'").value == "s"
        assert parse_expression("TRUE").value is True
        assert parse_expression("null").value is None
        assert parse_expression("MISSING").value is MISSING

    def test_struct_literal_string_keys(self):
        struct = parse_expression("{'a': 1, 'b': 2}")
        assert [field.key.value for field in struct.fields] == ["a", "b"]

    def test_struct_literal_identifier_keys(self):
        # Listing 18 uses bare identifiers: {deptno: d, avgsal: ...}
        struct = parse_expression("{deptno: d}")
        assert struct.fields[0].key.value == "deptno"
        assert isinstance(struct.fields[0].value, ast.VarRef)

    def test_struct_literal_computed_key(self):
        struct = parse_expression("{x.k: 1}")
        assert isinstance(struct.fields[0].key, ast.Path)

    def test_array_and_bag_literals(self):
        assert isinstance(parse_expression("[1, 2]"), ast.ArrayLit)
        assert isinstance(parse_expression("<<1, 2>>"), ast.BagLit)

    def test_brace_bag_literal(self):
        bag = parse_expression("{{ {'a': 1} }}")
        assert isinstance(bag, ast.BagLit)
        assert isinstance(bag.items[0], ast.StructLit)

    def test_empty_brace_bag(self):
        assert parse_expression("{{}}").items == []

    def test_nested_bag_closing_braces(self):
        bag = parse_expression("{{{'a': 1}}}")
        assert isinstance(bag, ast.BagLit)

    def test_parameter(self):
        expr = parse_expression("? + ?")
        assert expr.left.index == 0
        assert expr.right.index == 1


class TestPathsAndOperators:
    def test_dot_paths(self):
        expr = parse_expression("e.projects")
        assert isinstance(expr, ast.Path)
        assert expr.attr == "projects"

    def test_quoted_path_step(self):
        assert parse_expression('c."date"').attr == "date"

    def test_keyword_as_attribute(self):
        assert parse_expression("r.value").attr == "value"

    def test_index(self):
        expr = parse_expression("xs[0]")
        assert isinstance(expr, ast.Index)

    def test_chained_navigation(self):
        expr = parse_expression("a.b[1].c")
        assert expr.attr == "c"
        assert isinstance(expr.base, ast.Index)

    def test_precedence_arithmetic(self):
        expr = parse_expression("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_precedence_logic(self):
        expr = parse_expression("a OR b AND NOT c")
        assert expr.op == "OR"
        assert expr.right.op == "AND"
        assert isinstance(expr.right.right, ast.Unary)

    def test_comparison_diamond_normalised(self):
        assert parse_expression("a <> b").op == "!="

    def test_concat(self):
        assert parse_expression("a || b").op == "||"

    def test_unary_minus(self):
        expr = parse_expression("-x")
        assert isinstance(expr, ast.Unary)


class TestPredicates:
    def test_like_with_escape(self):
        expr = parse_expression("x LIKE 'a!%' ESCAPE '!'")
        assert isinstance(expr, ast.Like)
        assert expr.escape.value == "!"

    def test_not_like(self):
        assert parse_expression("x NOT LIKE 'a'").negated

    def test_between(self):
        expr = parse_expression("x BETWEEN 1 AND 10")
        assert isinstance(expr, ast.Between)

    def test_in_value_list(self):
        expr = parse_expression("x IN (1, 2, 3)")
        assert isinstance(expr.collection, ast.ArrayLit)
        assert len(expr.collection.items) == 3

    def test_in_single_value(self):
        expr = parse_expression("x IN (1)")
        assert isinstance(expr.collection, ast.ArrayLit)

    def test_in_collection_expression(self):
        expr = parse_expression("p IN e.projects")
        assert isinstance(expr.collection, ast.Path)

    def test_in_subquery(self):
        expr = parse_expression("x IN (SELECT VALUE v FROM t AS v)")
        assert isinstance(expr.collection, ast.SubqueryExpr)

    def test_is_missing(self):
        expr = parse_expression("x IS MISSING")
        assert expr.kind == "MISSING"

    def test_is_not_null(self):
        expr = parse_expression("x IS NOT NULL")
        assert expr.negated

    def test_is_type(self):
        assert parse_expression("x IS integer").kind == "INTEGER"

    def test_exists(self):
        assert isinstance(parse_expression("EXISTS e.projects"), ast.Exists)

    def test_case_searched(self):
        expr = parse_expression("CASE WHEN a THEN 1 ELSE 2 END")
        assert expr.operand is None
        assert len(expr.whens) == 1

    def test_case_simple(self):
        expr = parse_expression("CASE x WHEN 1 THEN 'a' WHEN 2 THEN 'b' END")
        assert expr.operand is not None
        assert expr.else_ is None

    def test_cast(self):
        expr = parse_expression("CAST(x AS integer)")
        assert expr.type_name == "INTEGER"


class TestFunctionCalls:
    def test_plain_call(self):
        call = parse_expression("LOWER(x)")
        assert call.name == "LOWER"

    def test_count_star(self):
        assert parse_expression("COUNT(*)").star

    def test_distinct_argument(self):
        assert parse_expression("AVG(DISTINCT x)").distinct

    def test_window_call(self):
        expr = parse_expression(
            "RANK() OVER (PARTITION BY d ORDER BY s DESC)"
        )
        assert isinstance(expr, ast.WindowCall)
        assert len(expr.spec.partition_by) == 1
        assert expr.spec.order_by[0].desc

    def test_query_argument(self):
        # Listing 16 style: COLL_AVG(SELECT VALUE ...).
        call = parse_expression("COLL_AVG(SELECT VALUE e.x FROM t AS e)")
        assert isinstance(call.args[0], ast.SubqueryExpr)


class TestQueryBlocks:
    def test_select_value(self):
        select = block(parse("SELECT VALUE 1")).select
        assert isinstance(select, ast.SelectValue)

    def test_select_element_synonym(self):
        assert isinstance(
            block(parse("SELECT ELEMENT 1")).select, ast.SelectValue
        )

    def test_select_star(self):
        assert isinstance(block(parse("SELECT * FROM t AS t")).select, ast.SelectStar)

    def test_select_list_aliases(self):
        select = block(parse("SELECT e.a AS x, e.b y, e.c FROM t AS e")).select
        assert [item.alias for item in select.items] == ["x", "y", None]

    def test_select_item_star(self):
        select = block(parse("SELECT e.*, 1 AS one FROM t AS e")).select
        assert select.items[0].star

    def test_select_distinct(self):
        assert block(parse("SELECT DISTINCT VALUE x FROM t AS x")).select.distinct

    def test_from_alias_without_as(self):
        items = block(parse("SELECT VALUE sp FROM today sp")).from_
        assert items[0].alias == "sp"

    def test_from_implied_alias(self):
        items = block(parse("SELECT VALUE x FROM t.things")).from_
        assert items[0].alias == "things"

    def test_from_at(self):
        item = block(parse("SELECT VALUE i FROM xs AS x AT i")).from_[0]
        assert item.at_alias == "i"

    def test_from_unnest_sugar(self):
        items = block(parse("SELECT VALUE p FROM e AS e, UNNEST e.ps AS p")).from_
        assert isinstance(items[1], ast.FromCollection)

    def test_from_unpivot(self):
        item = block(parse("SELECT VALUE v FROM UNPIVOT c AS v AT a")).from_[0]
        assert isinstance(item, ast.FromUnpivot)
        assert (item.value_alias, item.at_alias) == ("v", "a")

    def test_joins(self):
        item = block(
            parse("SELECT VALUE 1 FROM a AS a JOIN b AS b ON a.x = b.x")
        ).from_[0]
        assert isinstance(item, ast.FromJoin)
        assert item.kind == "INNER"

    def test_left_outer_join(self):
        item = block(
            parse("SELECT VALUE 1 FROM a AS a LEFT OUTER JOIN b AS b ON TRUE")
        ).from_[0]
        assert item.kind == "LEFT"

    def test_cross_join(self):
        item = block(parse("SELECT VALUE 1 FROM a AS a CROSS JOIN b AS b")).from_[0]
        assert item.kind == "CROSS"
        assert item.on is None

    def test_let(self):
        lets = block(parse("SELECT VALUE y FROM t AS x LET y = x + 1")).lets
        assert lets[0].name == "y"

    def test_where(self):
        assert block(parse("SELECT VALUE x FROM t AS x WHERE x > 1")).where is not None

    def test_from_first_select_last(self):
        query = parse("FROM t AS x WHERE x > 1 SELECT VALUE x")
        assert not block(query).select_first

    def test_from_first_requires_select(self):
        with pytest.raises(ParseError):
            parse("FROM t AS x WHERE x > 1")

    def test_group_by_with_group_as(self):
        clause = block(
            parse("FROM t AS x GROUP BY LOWER(x.k) AS k GROUP AS g SELECT VALUE k")
        ).group_by
        assert clause.keys[0].alias == "k"
        assert clause.group_as == "g"

    def test_group_by_inferred_alias(self):
        clause = block(
            parse("SELECT VALUE d FROM t AS x GROUP BY x.deptno")
        ).group_by
        assert clause.keys[0].alias == "deptno"

    def test_having(self):
        assert (
            block(
                parse("SELECT VALUE k FROM t AS x GROUP BY x.k HAVING COUNT(*) > 1")
            ).having
            is not None
        )

    def test_rollup(self):
        clause = block(
            parse("SELECT VALUE 1 FROM t AS x GROUP BY ROLLUP (x.a, x.b)")
        ).group_by
        assert clause.mode == "rollup"
        assert len(clause.keys) == 2

    def test_cube(self):
        clause = block(
            parse("SELECT VALUE 1 FROM t AS x GROUP BY CUBE (x.a, x.b)")
        ).group_by
        assert clause.mode == "cube"

    def test_grouping_sets(self):
        clause = block(
            parse(
                "SELECT VALUE 1 FROM t AS x "
                "GROUP BY GROUPING SETS ((x.a, x.b), (x.a), ())"
            )
        ).group_by
        assert clause.mode == "sets"
        assert clause.grouping_sets == [[0, 1], [0], []]

    def test_pivot_query(self):
        select = block(parse("PIVOT sp.price AT sp.symbol FROM t sp")).select
        assert isinstance(select, ast.PivotClause)

    def test_pivot_after_from(self):
        select = block(parse("FROM t sp PIVOT sp.price AT sp.symbol")).select
        assert isinstance(select, ast.PivotClause)


class TestQueryLevel:
    def test_order_by_limit_offset(self):
        query = parse("SELECT VALUE x FROM t AS x ORDER BY x DESC LIMIT 10 OFFSET 5")
        assert query.order_by[0].desc
        assert query.limit.value == 10
        assert query.offset.value == 5

    def test_offset_before_limit(self):
        query = parse("SELECT VALUE x FROM t AS x OFFSET 5 LIMIT 10")
        assert query.limit is not None and query.offset is not None

    def test_nulls_first_last(self):
        query = parse("SELECT VALUE x FROM t AS x ORDER BY x NULLS LAST")
        assert query.order_by[0].nulls_first is False

    def test_union(self):
        query = parse("SELECT VALUE 1 UNION ALL SELECT VALUE 2")
        assert isinstance(query.body, ast.SetOp)
        assert query.body.all

    def test_set_op_chain_left_assoc(self):
        query = parse("SELECT VALUE 1 UNION SELECT VALUE 2 EXCEPT SELECT VALUE 3")
        assert query.body.op == "EXCEPT"
        assert query.body.left.op == "UNION"

    def test_bare_expression_query(self):
        assert isinstance(parse("1 + 1").body, ast.Binary)

    def test_subquery_expression(self):
        expr = parse_expression("(SELECT VALUE x FROM t AS x)")
        assert isinstance(expr, ast.SubqueryExpr)

    def test_script(self):
        queries = parse_script("SELECT VALUE 1; SELECT VALUE 2;")
        assert len(queries) == 2

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse("SELECT VALUE 1 bogus extra")

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as info:
            parse("SELECT VALUE\n   %")
        assert info.value.line == 2
