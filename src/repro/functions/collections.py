"""Collection builtins: array/bag manipulation helpers.

These make the FROM-anything and construct-anything style of SQL++
practical; several are used by the examples and benchmarks.
"""

from __future__ import annotations

from typing import Any, List

from repro.config import EvalConfig
from repro.datamodel.values import MISSING, Bag, is_collection, type_name
from repro.functions.operators import distinct_elements, equals
from repro.functions.registry import builtin


def _collection_arg(name: str, value: Any) -> list:
    if isinstance(value, list):
        return value
    if isinstance(value, Bag):
        return value.to_list()
    raise TypeError(f"{name} expects a collection, got {type_name(value)}")


@builtin("ARRAY_LENGTH", 1, 1)
def array_length(args: List[Any], config: EvalConfig) -> Any:
    return len(_collection_arg("ARRAY_LENGTH", args[0]))


@builtin("ARRAY_CONTAINS", 2, 2)
def array_contains(args: List[Any], config: EvalConfig) -> Any:
    items = _collection_arg("ARRAY_CONTAINS", args[0])
    needle = args[1]
    return any(equals(item, needle, config) is True for item in items)


@builtin("ARRAY_CONCAT", 2, None)
def array_concat(args: List[Any], config: EvalConfig) -> Any:
    result: list = []
    for value in args:
        result.extend(_collection_arg("ARRAY_CONCAT", value))
    return result


@builtin("ARRAY_DISTINCT", 1, 1)
def array_distinct(args: List[Any], config: EvalConfig) -> Any:
    return distinct_elements(_collection_arg("ARRAY_DISTINCT", args[0]))


@builtin("ARRAY_FLATTEN", 1, 1)
def array_flatten(args: List[Any], config: EvalConfig) -> Any:
    """Flatten one level of nesting; non-collection elements pass through."""
    result: list = []
    for item in _collection_arg("ARRAY_FLATTEN", args[0]):
        if is_collection(item):
            result.extend(item)
        else:
            result.append(item)
    return result


@builtin("ARRAY_SLICE", 2, 3)
def array_slice(args: List[Any], config: EvalConfig) -> Any:
    """``ARRAY_SLICE(a, start [, end])`` — 0-based half-open slice."""
    items = _collection_arg("ARRAY_SLICE", args[0])
    start = args[1]
    if isinstance(start, bool) or not isinstance(start, int):
        raise TypeError("ARRAY_SLICE start must be an integer")
    if len(args) == 3:
        end = args[2]
        if isinstance(end, bool) or not isinstance(end, int):
            raise TypeError("ARRAY_SLICE end must be an integer")
        return items[start:end]
    return items[start:]


@builtin("ARRAY_SORT", 1, 1)
def array_sort(args: List[Any], config: EvalConfig) -> Any:
    """Sort a collection into an array using the SQL++ total order."""
    from repro.datamodel.ordering import sort_key

    items = _collection_arg("ARRAY_SORT", args[0])
    return sorted(items, key=sort_key)


@builtin("TO_ARRAY", 1, 1, propagate_absent=False)
def to_array(args: List[Any], config: EvalConfig) -> Any:
    """Coerce to an array: arrays pass, bags enumerate, scalars wrap."""
    value = args[0]
    if value is MISSING:
        return []
    if isinstance(value, list):
        return value
    if isinstance(value, Bag):
        return value.to_list()
    return [value]


@builtin("TO_BAG", 1, 1, propagate_absent=False)
def to_bag(args: List[Any], config: EvalConfig) -> Any:
    """Coerce to a bag: bags pass, arrays enumerate, scalars wrap."""
    value = args[0]
    if value is MISSING:
        return Bag()
    if isinstance(value, Bag):
        return value
    if isinstance(value, list):
        return Bag(value)
    return Bag([value])


@builtin("RANGE", 1, 3)
def range_fn(args: List[Any], config: EvalConfig) -> Any:
    """``RANGE(stop)`` / ``RANGE(start, stop [, step])`` — integer array."""
    for value in args:
        if isinstance(value, bool) or not isinstance(value, int):
            raise TypeError("RANGE expects integers")
    if len(args) == 1:
        return list(range(args[0]))
    if len(args) == 2:
        return list(range(args[0], args[1]))
    if args[2] == 0:
        raise ValueError("RANGE step must be non-zero")
    return list(range(args[0], args[1], args[2]))
