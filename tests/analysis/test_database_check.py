"""``Database.check``: catalog wiring, schema and sample seeding, and
the lint metrics counters."""

from repro import Database
from repro.analysis.diagnostics import ERROR


def codes(diagnostics):
    return [d.code for d in diagnostics]


class TestCheck:
    def test_clean_query(self):
        db = Database()
        db.set("emp", [{"name": "bob"}])
        assert db.check("SELECT VALUE e.name FROM emp AS e") == []

    def test_never_raises_on_bad_query(self):
        db = Database()
        assert codes(db.check("SELECT FROM")) == ["SQLPP000"]

    def test_unknown_collection_core_mode(self):
        db = Database(sql_compat=False)
        found = db.check("SELECT VALUE x FROM nowhere AS x")
        assert "SQLPP001" in codes(found)

    def test_registered_schema_closes_the_shape(self):
        db = Database()
        db.set_schema("emp", "BAG<STRUCT<name STRING>>")
        db.set("emp", [{"name": "bob"}])
        found = db.check("SELECT VALUE e.salary FROM emp AS e")
        assert "SQLPP101" in codes(found)

    def test_sampled_values_stay_open(self):
        # Samples prove what exists, not what can't: no always-MISSING
        # conclusion from data alone.
        db = Database()
        db.set("emp", [{"name": "bob"}])
        found = db.check("SELECT VALUE e.salary FROM emp AS e")
        assert "SQLPP101" not in codes(found)

    def test_sampling_still_types_known_attributes(self):
        db = Database()
        db.set("emp", [{"name": "bob", "age": 41}])
        found = db.check(
            "SELECT VALUE e FROM emp AS e WHERE e.name > e.age"
        )
        assert "SQLPP102" in codes(found)

    def test_suppress_parameter(self):
        db = Database()
        db.set("emp", [{"name": "bob", "age": 41}])
        found = db.check(
            "SELECT VALUE e FROM emp AS e WHERE e.name > e.age",
            suppress=("SQLPP102",),
        )
        assert found == []

    def test_mode_overrides(self):
        db = Database()
        db.set("emp", [{"name": "bob"}])
        compat_clean = db.check("SELECT VALUE name FROM emp AS e")
        core_found = db.check(
            "SELECT VALUE name FROM emp AS e", sql_compat=False
        )
        assert compat_clean == []
        assert "SQLPP001" in codes(core_found)


class TestMetrics:
    def test_counters_accumulate(self):
        db = Database()
        db.check("SELECT VALUE 1")
        db.check("SELECT FROM")
        db.check("SELECT VALUE 1 = 'a'")
        counters = db.metrics.snapshot()["counters"]
        assert counters["lint_checks"] == 3
        assert counters["lint_errors"] == 1
        assert counters["lint_warnings"] == 1

    def test_exposed_in_prometheus_text(self):
        db = Database()
        db.check("SELECT FROM")
        text = db.metrics.expose_text()
        assert "repro_lint_checks 1" in text
        assert "repro_lint_errors 1" in text


class TestSeverities:
    def test_error_findings_are_runtime_failures(self):
        db = Database(sql_compat=False)
        found = db.check("SELECT VALUE nosuch FROM [1] AS x")
        assert any(d.severity == ERROR for d in found)
