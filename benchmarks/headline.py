"""Extract the headline shape comparisons from a benchmark JSON dump.

Prints, for each experiment group with a baseline/contender structure,
the median times side by side and the resulting ratio — the numbers
EXPERIMENTS.md quotes.

Usage::

    python benchmarks/headline.py .bench.json
"""

from __future__ import annotations

import json
import sys
from collections import defaultdict


def main(path: str) -> None:
    with open(path) as handle:
        data = json.load(handle)

    groups: dict = defaultdict(dict)
    for bench in data["benchmarks"]:
        group = bench.get("group") or "ungrouped"
        groups[group][bench["name"]] = bench["stats"]["median"]

    for group in sorted(groups):
        print(f"\n== {group}")
        entries = sorted(groups[group].items(), key=lambda item: item[1])
        fastest = entries[0][1]
        for name, median in entries:
            ratio = median / fastest if fastest else float("inf")
            print(f"  {median * 1e3:10.2f} ms  ({ratio:6.1f}x)  {name}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else ".bench.json")
