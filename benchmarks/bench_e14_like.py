"""E14 — LIKE pattern compilation caching.

``LIKE`` translates its SQL pattern into a regular expression.  Literal
patterns are hoisted to query-compile time by ``compile_expr``, but a
*dynamic* pattern (one computed per binding — a column, a parameter, a
LET variable) reaches :func:`repro.functions.operators._like_regex` on
every row.  Since real workloads apply the same handful of patterns to
many rows, ``_like_regex`` carries an LRU cache keyed by
``(pattern, escape_char)``; this experiment regenerates the claim that
the cache removes the per-row recompilation cost:

* at the function level, a cached lookup beats an uncached translation
  by at least :data:`MIN_FUNCTION_SPEEDUP`;
* end to end, a 10k-row dynamic-pattern LIKE filter is timed with the
  cache in place (pytest-benchmark), and both typing modes agree on the
  selected rows.
"""

from __future__ import annotations

import time

import pytest

from repro import Database
from repro.functions import operators as ops

from conftest import assert_same_bag

N_ROWS = 10_000
#: Acceptance bar for the function-level microbenchmark.  Measured
#: locally at ~20×; 5× leaves headroom for slow CI machines.
MIN_FUNCTION_SPEEDUP = 5.0

#: A pattern with wildcards and an escape, so translation does real work.
PATTERN = "%Secur_ty%"

QUERY = "SELECT VALUE r.s FROM r AS r WHERE r.s LIKE r.pat"


def like_db() -> Database:
    rows = [
        {
            "s": f"user-{i}-Security" if i % 3 == 0 else f"user-{i}-Ops",
            "pat": PATTERN,
        }
        for i in range(N_ROWS)
    ]
    db = Database()
    db.set("r", rows)
    return db


def test_cache_speedup_claim():
    """Cached ``_like_regex`` beats recompilation by ≥5× (10k calls)."""
    calls = 10_000
    ops._like_regex.cache_clear()
    started = time.perf_counter()
    for __ in range(calls):
        ops._like_regex(PATTERN, "!")
    cached = time.perf_counter() - started

    uncached_fn = ops._like_regex.__wrapped__
    started = time.perf_counter()
    for __ in range(calls):
        uncached_fn(PATTERN, "!")
    uncached = time.perf_counter() - started

    speedup = uncached / cached
    assert speedup >= MIN_FUNCTION_SPEEDUP, (
        f"LIKE regex cache speedup {speedup:.1f}x "
        f"below the {MIN_FUNCTION_SPEEDUP}x bar"
    )


def test_modes_agree_on_selection():
    """The cache is semantics-free: both typing modes select the same
    rows, and the selection is the expected third of the data."""
    permissive = like_db().execute(QUERY)
    strict = like_db().execute(QUERY, typing_mode="strict")
    assert_same_bag(permissive, strict)
    assert len(permissive) == (N_ROWS + 2) // 3


@pytest.mark.benchmark(group="E14-like-10k")
class TestLikeFilter10k:
    def test_dynamic_pattern_filter(self, benchmark):
        db = like_db()
        db.execute(QUERY)  # warm the compile cache; measure evaluation
        result = benchmark(lambda: db.execute(QUERY))
        assert len(result) == (N_ROWS + 2) // 3

    def test_literal_pattern_filter(self, benchmark):
        # Baseline shape: a literal pattern is hoisted at compile time,
        # so this bounds what the cache can recover for dynamic ones.
        db = like_db()
        query = f"SELECT VALUE r.s FROM r AS r WHERE r.s LIKE '{PATTERN}'"
        db.execute(query)
        result = benchmark(lambda: db.execute(query))
        assert len(result) == (N_ROWS + 2) // 3
