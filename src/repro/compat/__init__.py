"""The SQL++ compatibility kit.

The paper's conclusion (Section VIII) announces "a shared 'compatibility
kit' for use in checking for compliance with Core SQL++ in both its
composability mode and its SQL compatibility mode" as future joint work.
This package is that kit, built from the paper itself: every listing —
input collection, query and printed result — is a machine-checkable
:class:`~repro.compat.corpus.ConformanceCase`, each tagged with the
language mode it pins down, plus extended cases for behaviours the prose
describes without a listing.

* :mod:`repro.compat.corpus` — the case dataclass and registry;
* :mod:`repro.compat.listings` — the paper's Listings 1–28 verbatim;
* :mod:`repro.compat.extended` — prose-derived cases (MISSING rules,
  coercion, compatibility-mode guarantees);
* :mod:`repro.compat.runner` — executes cases against any
  :class:`~repro.catalog.Database`-compatible engine;
* :mod:`repro.compat.report` — a human-readable conformance report.
"""

from repro.compat.corpus import ConformanceCase, all_cases
from repro.compat.runner import CaseResult, run_case, run_cases
from repro.compat.report import format_report

__all__ = [
    "ConformanceCase",
    "all_cases",
    "CaseResult",
    "run_case",
    "run_cases",
    "format_report",
]
