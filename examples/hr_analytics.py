"""HR analytics over nested employee data — the paper's motivating domain.

Generates a synthetic HR dataset (employees with nested project arrays,
heterogeneous titles including nulls) and runs a realistic analytics
session: unnesting, nested result construction, GROUP AS, window
functions, ROLLUP, and a schema workflow (infer → impose → statically
check).

Run:  python examples/hr_analytics.py
"""

from repro import Database, sqlpp_dumps
from repro.schema import check_query, infer_schema
from repro.workloads import emp_nested


def show(title, result, limit=5):
    print(f"\n-- {title}")
    items = list(result) if not isinstance(result, (int, float, str)) else [result]
    for item in items[:limit]:
        print("  ", sqlpp_dumps(item).replace("\n", " ").replace("  ", ""))
    if len(items) > limit:
        print(f"   ... ({len(items) - limit} more rows)")


def main():
    db = Database()
    db.set("hr.emp", emp_nested(500, fanout=3, seed=42))

    # Project staffing: invert the employee→projects hierarchy.
    show(
        "Members per project (GROUP AS inversion, paper Listing 12)",
        db.execute(
            """
            FROM hr.emp AS e, e.projects AS p
            GROUP BY p.name AS project GROUP AS g
            SELECT project AS project,
                   COUNT(*) AS members,
                   (FROM g AS v SELECT VALUE v.e.name) AS names
            ORDER BY members DESC
            """
        ),
    )

    # Salary analytics with window functions over unnested data.
    show(
        "Top-2 earners per department (windows over nested data)",
        db.execute(
            """
            SELECT VALUE r
            FROM (SELECT e.deptno AS dept, e.name AS name, e.salary AS salary,
                         RANK() OVER (PARTITION BY e.deptno
                                      ORDER BY e.salary DESC) AS rk
                  FROM hr.emp AS e) AS r
            WHERE r.rk <= 2
            ORDER BY r.dept, r.rk
            """
        ),
        limit=8,
    )

    # ROLLUP across title and project: subtotals at every level.
    show(
        "Headcount rollup by (title, project)",
        db.execute(
            """
            SELECT e.title AS title, p.name AS project, COUNT(*) AS n
            FROM hr.emp AS e, e.projects AS p
            GROUP BY ROLLUP (e.title, p.name)
            ORDER BY n DESC
            """
        ),
        limit=8,
    )

    # Employees are heterogeneous (title may be null): the permissive
    # pipeline keeps every row and the null/missing distinction survives.
    show(
        "Title distribution incl. the untitled",
        db.execute(
            """
            SELECT COALESCE(e.title, '(none)') AS title, COUNT(*) AS n
            FROM hr.emp AS e
            GROUP BY COALESCE(e.title, '(none)')
            ORDER BY n DESC
            """
        ),
        limit=10,
    )

    # Schema workflow: infer a schema from the loaded data, impose it
    # (query stability: results cannot change), then let the static
    # checker catch a typo'd attribute before running anything.
    schema = infer_schema(db.get("hr.emp"))
    db.set_schema("hr.emp", schema)
    print("\n-- Inferred schema (imposed on hr.emp):")
    print("  ", str(schema)[:120], "...")

    findings = check_query(
        db.compile("SELECT e.nmae AS name FROM hr.emp AS e"), db._schemas
    )
    print("\n-- Static checker on a typo'd query:")
    for finding in findings:
        print("  !", finding)

    # Bare column names now disambiguate through the schema.
    show(
        "Schema-based disambiguation: bare columns over two collections",
        db.execute(
            """
            SELECT name, salary
            FROM hr.emp AS e
            WHERE salary > 190000
            ORDER BY salary DESC
            """
        ),
    )


if __name__ == "__main__":
    main()
