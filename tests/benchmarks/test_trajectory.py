"""The benchmark-trajectory regression gate (comparison logic only).

These tests exercise ``benchmarks/trajectory.py``'s snapshot
comparison and exit codes against synthetic files — no workload is
ever timed, so they are fast and deterministic.  Live measurement runs
in the allowed-to-fail CI job, not in tier 1.
"""

import importlib.util
import json
from pathlib import Path

_TRAJECTORY_PATH = (
    Path(__file__).resolve().parents[2] / "benchmarks" / "trajectory.py"
)
_spec = importlib.util.spec_from_file_location("trajectory", _TRAJECTORY_PATH)
trajectory = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(trajectory)


def snapshot(**medians):
    return {
        "schema": "repro-bench-trajectory/1",
        "groups": {
            name: {"median_s": value, "mean_s": value, "rounds": 5}
            for name, value in medians.items()
        },
    }


def write(path, data):
    path.write_text(json.dumps(data))
    return str(path)


class TestCompare:
    def test_regression_beyond_threshold_fails(self):
        regressions, __ = trajectory.compare(
            snapshot(join=0.02), snapshot(join=0.01)
        )
        assert len(regressions) == 1
        assert "join" in regressions[0]

    def test_within_threshold_passes(self):
        regressions, __ = trajectory.compare(
            snapshot(join=0.011), snapshot(join=0.01)
        )
        assert regressions == []

    def test_improvement_passes(self):
        regressions, lines = trajectory.compare(
            snapshot(join=0.005), snapshot(join=0.01)
        )
        assert regressions == []
        assert any("improved" in line for line in lines)

    def test_new_and_dropped_workloads_never_fail(self):
        regressions, lines = trajectory.compare(
            snapshot(fresh=1.0), snapshot(old=0.001)
        )
        assert regressions == []
        assert any("new" in line for line in lines)
        assert any("dropped" in line for line in lines)

    def test_custom_threshold(self):
        regressions, __ = trajectory.compare(
            snapshot(join=0.0115), snapshot(join=0.01), threshold=0.10
        )
        assert len(regressions) == 1


class TestMainExitCodes:
    def test_regressed_candidate_exits_nonzero(self, tmp_path, capsys):
        base = write(tmp_path / "base.json", snapshot(join=0.01))
        cand = write(tmp_path / "cand.json", snapshot(join=0.02))
        code = trajectory.main(
            ["--check", "--candidate", cand, "--baseline", base]
        )
        assert code == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_clean_candidate_exits_zero(self, tmp_path, capsys):
        base = write(tmp_path / "base.json", snapshot(join=0.01))
        cand = write(tmp_path / "cand.json", snapshot(join=0.01))
        code = trajectory.main(
            ["--check", "--candidate", cand, "--baseline", base]
        )
        assert code == 0
        assert "trajectory gate: ok" in capsys.readouterr().out

    def test_committed_baseline_is_discovered(self, tmp_path, capsys):
        cand = write(tmp_path / "cand.json", snapshot())
        code = trajectory.main(["--check", "--candidate", cand])
        assert code == 0
        out = capsys.readouterr().out
        assert "baseline: BENCH_PR" in out

    def test_out_writes_the_candidate_snapshot(self, tmp_path):
        cand = write(tmp_path / "cand.json", snapshot(join=0.01))
        out = tmp_path / "copy.json"
        trajectory.main(["--candidate", cand, "--out", str(out)])
        assert json.loads(out.read_text())["groups"]["join"]["median_s"] == 0.01


class TestLatestSnapshot:
    def test_highest_pr_number_wins(self, tmp_path):
        write(tmp_path / "BENCH_PR3.json", snapshot())
        write(tmp_path / "BENCH_PR12.json", snapshot())
        write(tmp_path / "unrelated.json", snapshot())
        latest = trajectory.latest_snapshot(tmp_path)
        assert latest.name == "BENCH_PR12.json"

    def test_no_snapshots_returns_none(self, tmp_path):
        assert trajectory.latest_snapshot(tmp_path) is None


class TestCommittedBaseline:
    def test_repo_has_a_committed_snapshot(self):
        latest = trajectory.latest_snapshot()
        assert latest is not None
        data = json.loads(latest.read_text())
        assert data["schema"] == "repro-bench-trajectory/1"
        assert data["groups"]
        for stats in data["groups"].values():
            assert stats["median_s"] > 0
