"""Query-block pipeline: FROM, LET, WHERE, SELECT variants, set ops,
ORDER BY / LIMIT / OFFSET."""

import pytest

from repro import Bag, MISSING, Struct, TypeCheckError
from repro.errors import EvaluationError

from tests.conftest import bag_of


class TestFrom:
    def test_range_over_array(self, db):
        assert bag_of(db.execute("SELECT VALUE v FROM [1, 2, 3] AS v")) == [1, 2, 3]

    def test_range_over_bag(self, db):
        assert sorted(bag_of(db.execute("SELECT VALUE v FROM <<1, 2>> AS v"))) == [1, 2]

    def test_at_over_array(self, db):
        result = bag_of(db.execute("SELECT VALUE [i, v] FROM ['a', 'b'] AS v AT i"))
        assert result == [[0, "a"], [1, "b"]]

    def test_at_over_bag_is_missing(self, db):
        result = bag_of(db.execute("SELECT VALUE i IS MISSING FROM <<'a'>> AS v AT i"))
        assert result == [True]

    def test_left_correlation(self, db):
        db.set("t", [{"xs": [1, 2]}, {"xs": [3]}])
        result = bag_of(db.execute("SELECT VALUE x FROM t AS r, r.xs AS x"))
        assert sorted(result) == [1, 2, 3]

    def test_three_way_correlation(self, db):
        db.set("t", [{"xs": [[1, 2], [3]]}])
        result = bag_of(
            db.execute("SELECT VALUE y FROM t AS r, r.xs AS x, x AS y")
        )
        assert sorted(result) == [1, 2, 3]

    def test_from_scalar_permissive(self, db):
        assert bag_of(db.execute("SELECT VALUE v FROM 5 AS v")) == [5]

    def test_from_struct_permissive(self, db):
        result = bag_of(db.execute("SELECT VALUE v.a FROM {'a': 1} AS v"))
        assert result == [1]

    def test_from_null_or_missing_is_empty(self, db):
        assert bag_of(db.execute("SELECT VALUE v FROM NULL AS v")) == []
        assert bag_of(db.execute("SELECT VALUE v FROM MISSING AS v")) == []

    def test_from_scalar_strict_raises(self, db):
        with pytest.raises(TypeCheckError):
            db.execute("SELECT VALUE v FROM 5 AS v", typing_mode="strict")

    def test_cartesian_product(self, db):
        result = bag_of(
            db.execute("SELECT VALUE [a, b] FROM [1, 2] AS a, [10, 20] AS b")
        )
        assert len(result) == 4


class TestJoins:
    @pytest.fixture
    def jdb(self, db):
        db.set("l", [{"k": 1, "v": "a"}, {"k": 2, "v": "b"}])
        db.set("r", [{"k": 1, "w": "x"}, {"k": 1, "w": "y"}, {"k": 3, "w": "z"}])
        return db

    def test_inner_join(self, jdb):
        result = bag_of(
            jdb.execute(
                "SELECT l.v AS v, r.w AS w FROM l AS l JOIN r AS r ON l.k = r.k"
            )
        )
        assert len(result) == 2
        assert all(row["v"] == "a" for row in result)

    def test_left_join_pads_null(self, jdb):
        result = bag_of(
            jdb.execute(
                "SELECT l.v AS v, r.w AS w "
                "FROM l AS l LEFT JOIN r AS r ON l.k = r.k"
            )
        )
        padded = [row for row in result if row["v"] == "b"]
        assert len(padded) == 1
        assert padded[0]["w"] is None

    def test_cross_join(self, jdb):
        result = bag_of(
            jdb.execute("SELECT VALUE 1 FROM l AS l CROSS JOIN r AS r")
        )
        assert len(result) == 6

    def test_lateral_join_right_side(self, db):
        db.set("t", [{"id": 1, "xs": [1, 2]}, {"id": 2, "xs": []}])
        result = bag_of(
            db.execute(
                "SELECT r.id AS id, x AS x "
                "FROM t AS r LEFT JOIN r.xs AS x ON TRUE"
            )
        )
        assert {"id": 2, "x": None} in [s.to_dict() for s in result]

    def test_join_on_non_true_drops(self, jdb):
        result = bag_of(
            jdb.execute(
                "SELECT VALUE 1 FROM l AS l JOIN r AS r ON l.missing_attr = r.k"
            )
        )
        assert result == []


class TestLetWhere:
    def test_let_binding(self, db):
        result = bag_of(
            db.execute("SELECT VALUE y FROM [1, 2] AS x LET y = x * 10")
        )
        assert sorted(result) == [10, 20]

    def test_let_chained(self, db):
        result = bag_of(
            db.execute("SELECT VALUE z FROM [1] AS x LET y = x + 1, z = y + 1")
        )
        assert result == [3]

    def test_where_keeps_only_true(self, db):
        db.set("t", [{"x": 1}, {"x": None}, {}])
        result = bag_of(db.execute("SELECT VALUE r FROM t AS r WHERE r.x = 1"))
        assert len(result) == 1

    def test_where_missing_filtered(self, db):
        result = bag_of(
            db.execute("SELECT VALUE v FROM [1, 'a', 2] AS v WHERE v > 1")
        )
        assert result == [2]


class TestSelectVariants:
    def test_select_value_any_shape(self, db):
        result = bag_of(db.execute("SELECT VALUE [v, {'v': v}] FROM [1] AS v"))
        assert result == [[1, Struct({"v": 1})]]

    def test_select_list_builds_structs(self, db):
        result = bag_of(db.execute("SELECT v AS a, v + 1 AS b FROM [1] AS v"))
        assert result[0].to_dict() == {"a": 1, "b": 2}

    def test_select_list_infers_names(self, db):
        db.set("t", [{"name": "x", "id": 1}])
        result = bag_of(db.execute("SELECT r.name, r.id FROM t AS r"))
        assert set(result[0].keys()) == {"name", "id"}

    def test_select_positional_names(self, db):
        result = bag_of(db.execute("SELECT 1 + 1, 2 + 2 FROM [0] AS z"))
        assert result[0].keys() == ["_1", "_2"]

    def test_select_star_merges_tuples(self, db):
        db.set("l", [{"a": 1}])
        db.set("r", [{"b": 2}])
        result = bag_of(db.execute("SELECT * FROM l AS l, r AS r"))
        assert result[0].to_dict() == {"a": 1, "b": 2}

    def test_select_star_names_scalars(self, db):
        result = bag_of(db.execute("SELECT * FROM [5] AS v"))
        assert result[0].to_dict() == {"v": 5}

    def test_select_item_star_splices(self, db):
        db.set("t", [{"a": 1, "b": 2}])
        result = bag_of(db.execute("SELECT r.*, 9 AS extra FROM t AS r"))
        assert result[0].to_dict() == {"a": 1, "b": 2, "extra": 9}

    def test_select_distinct_value(self, db):
        result = bag_of(db.execute("SELECT DISTINCT VALUE v FROM [1, 1, 2] AS v"))
        assert sorted(result) == [1, 2]

    def test_missing_output_is_element(self, db):
        db.set("t", [{"a": 1}, {}])
        result = db.execute("SELECT VALUE r.a FROM t AS r")
        assert any(item is MISSING for item in result)

    def test_missing_as_null_option(self, db):
        db.set("t", [{}])
        result = db.execute("SELECT VALUE r.a FROM t AS r", missing_as_null=True)
        assert list(result) == [None]

    def test_no_from_clause(self, db):
        assert bag_of(db.execute("SELECT VALUE 1 + 1")) == [2]

    def test_select_list_without_from(self, db):
        result = bag_of(db.execute("SELECT 1 AS one"))
        assert result[0].to_dict() == {"one": 1}


class TestSetOperations:
    def test_union_all(self, db):
        result = db.execute("SELECT VALUE 1 UNION ALL SELECT VALUE 1")
        assert bag_of(result) == [1, 1]

    def test_union_distinct(self, db):
        result = db.execute(
            "(SELECT VALUE v FROM [1, 2] AS v) UNION (SELECT VALUE v FROM [2, 3] AS v)"
        )
        assert sorted(bag_of(result)) == [1, 2, 3]

    def test_intersect_all_multiset(self, db):
        result = db.execute(
            "(SELECT VALUE v FROM [1, 1, 2] AS v) INTERSECT ALL "
            "(SELECT VALUE v FROM [1, 1, 1] AS v)"
        )
        assert bag_of(result) == [1, 1]

    def test_except_all_multiset(self, db):
        result = db.execute(
            "(SELECT VALUE v FROM [1, 1, 2] AS v) EXCEPT ALL "
            "(SELECT VALUE v FROM [1] AS v)"
        )
        assert sorted(bag_of(result)) == [1, 2]

    def test_except_distinct(self, db):
        result = db.execute(
            "(SELECT VALUE v FROM [1, 1, 2] AS v) EXCEPT (SELECT VALUE v FROM [2] AS v)"
        )
        assert bag_of(result) == [1]

    def test_bare_collection_operands(self, db):
        result = db.execute("[1, 2] UNION ALL <<3>>")
        assert sorted(bag_of(result)) == [1, 2, 3]

    def test_setop_requires_collections(self, db):
        with pytest.raises(EvaluationError):
            db.execute("1 UNION ALL 2")


class TestOrderLimitOffset:
    def test_order_by_returns_array(self, db):
        result = db.execute("SELECT VALUE v FROM <<3, 1, 2>> AS v ORDER BY v")
        assert isinstance(result, list)
        assert result == [1, 2, 3]

    def test_unordered_returns_bag(self, db):
        assert isinstance(db.execute("SELECT VALUE v FROM [1] AS v"), Bag)

    def test_order_desc(self, db):
        result = db.execute("SELECT VALUE v FROM [1, 3, 2] AS v ORDER BY v DESC")
        assert result == [3, 2, 1]

    def test_order_by_binding_variable(self, db):
        db.set("t", [{"k": 2, "v": "b"}, {"k": 1, "v": "a"}])
        result = db.execute("SELECT VALUE r.v FROM t AS r ORDER BY r.k")
        assert result == ["a", "b"]

    def test_order_by_output_alias(self, db):
        db.set("t", [{"k": 2}, {"k": 1}])
        result = db.execute("SELECT r.k AS sort_me FROM t AS r ORDER BY sort_me")
        assert [row["sort_me"] for row in result] == [1, 2]

    def test_order_multiple_keys_mixed_direction(self, db):
        db.set("t", [{"a": 1, "b": 2}, {"a": 1, "b": 1}, {"a": 0, "b": 9}])
        result = db.execute(
            "SELECT VALUE [r.a, r.b] FROM t AS r ORDER BY r.a ASC, r.b DESC"
        )
        assert result == [[0, 9], [1, 2], [1, 1]]

    def test_nulls_default_first_asc(self, db):
        result = db.execute("SELECT VALUE v FROM [2, NULL, 1] AS v ORDER BY v")
        assert result[0] is None

    def test_nulls_last_explicit(self, db):
        result = db.execute(
            "SELECT VALUE v FROM [2, NULL, 1] AS v ORDER BY v NULLS LAST"
        )
        assert result[-1] is None

    def test_nulls_first_with_desc(self, db):
        result = db.execute(
            "SELECT VALUE v FROM [2, NULL, 1] AS v ORDER BY v DESC NULLS FIRST"
        )
        assert result[0] is None

    def test_limit_offset(self, db):
        result = db.execute("SELECT VALUE v FROM [1,2,3,4] AS v ORDER BY v LIMIT 2 OFFSET 1")
        assert result == [2, 3]

    def test_limit_without_order(self, db):
        result = db.execute("SELECT VALUE v FROM [1, 2, 3] AS v LIMIT 2")
        assert len(bag_of(result)) == 2

    def test_negative_limit_rejected(self, db):
        with pytest.raises(EvaluationError):
            db.execute("SELECT VALUE v FROM [1] AS v LIMIT -1")

    def test_limit_expression(self, db):
        assert len(db.execute("SELECT VALUE v FROM [1,2,3] AS v LIMIT 1 + 1")) == 2

    def test_limit_on_bare_expression_query(self, db):
        result = db.execute("[3, 1, 2] LIMIT 2")
        assert bag_of(result) == [3, 1]
