"""Metrics sinks: where per-query :class:`QueryMetrics` records go.

Two built-ins cover the common deployments:

* :class:`InMemorySink` — a bounded ring buffer, always attached by
  default; powers the REPL's ``.stats`` and tests.
* :class:`JsonLinesSink` — an append-only JSON-lines file, optionally
  thresholded so only *slow* queries are persisted (the classic
  slow-query log).

Anything with an ``emit(metrics)`` method is a valid sink, so embedders
can forward metrics to statsd/OTel/etc. without this package growing
those dependencies.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Deque, List, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.observability.metrics import QueryMetrics


class InMemorySink:
    """Keeps the most recent ``capacity`` query metrics in memory."""

    def __init__(self, capacity: int = 128):
        self.records: Deque["QueryMetrics"] = deque(maxlen=capacity)

    def emit(self, metrics: "QueryMetrics") -> None:
        self.records.append(metrics)

    def tail(self, count: int = 10) -> List["QueryMetrics"]:
        return list(self.records)[-count:]


class JsonLinesSink:
    """Appends one JSON object per query to a log file.

    ``threshold_s`` turns the sink into a slow-query log: only queries
    whose total wall time reaches the threshold are written (errors and
    resource-exhausted queries are always written — those are exactly
    the ones an operator wants to see).
    """

    def __init__(self, path: str, threshold_s: float = 0.0):
        self.path = path
        self.threshold_s = threshold_s

    def emit(self, metrics: "QueryMetrics") -> None:
        if metrics.status == "ok" and metrics.total_s < self.threshold_s:
            return
        with open(self.path, "a") as handle:
            handle.write(json.dumps(metrics.to_dict(), sort_keys=True))
            handle.write("\n")
