"""Convert a pytest-benchmark JSON dump into the EXPERIMENTS.md table.

Usage::

    pytest benchmarks/ --benchmark-only --benchmark-json=bench.json
    python benchmarks/report.py bench.json > measured.md
"""

from __future__ import annotations

import json
import sys
from collections import defaultdict


def format_seconds(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:,.0f} µs"
    if seconds < 1:
        return f"{seconds * 1e3:,.1f} ms"
    return f"{seconds:,.2f} s"


def main(path: str) -> None:
    with open(path) as handle:
        data = json.load(handle)

    groups: dict = defaultdict(list)
    for bench in data["benchmarks"]:
        groups[bench.get("group") or "ungrouped"].append(bench)

    print("| Group | Benchmark | Median | Mean | Rounds | Speedup |")
    print("|---|---|---:|---:|---:|---:|")
    for group in sorted(groups):
        ranked = sorted(groups[group], key=lambda b: b["stats"]["median"])
        # Speedup is relative to the slowest benchmark in the group, so
        # within E13-joins-* the hash-join row reads "N× over the
        # nested loop" directly.
        slowest = max(bench["stats"]["median"] for bench in ranked)
        for bench in ranked:
            stats = bench["stats"]
            name = bench["name"].replace("test_", "")
            speedup = slowest / stats["median"] if stats["median"] else 0.0
            speedup_cell = "—" if len(ranked) == 1 else f"{speedup:,.1f}×"
            print(
                f"| {group} | `{name}` | {format_seconds(stats['median'])} "
                f"| {format_seconds(stats['mean'])} | {stats['rounds']} "
                f"| {speedup_cell} |"
            )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "bench.json")
