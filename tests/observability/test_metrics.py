"""QueryMetrics, MetricsRegistry and the metric sinks."""

import json

import pytest

from repro import Database
from repro.errors import ResourceExhausted, SQLPPError
from repro.observability import InMemorySink, JsonLinesSink, QueryMetrics


@pytest.fixture
def db():
    database = Database()
    database.set("r", [{"v": i} for i in range(10)])
    return database


class TestPerQueryRecords:
    def test_successful_query_is_recorded(self, db):
        db.execute("SELECT VALUE a.v FROM r AS a")
        record = db.metrics.last
        assert record.status == "ok"
        assert record.rows_returned == 10
        assert record.total_s > 0
        assert record.execute_s > 0
        assert record.cache_hit is False

    def test_repeat_query_hits_the_compile_cache(self, db):
        db.execute("SELECT VALUE a.v FROM r AS a")
        db.execute("SELECT VALUE a.v FROM r AS a")
        assert db.metrics.last.cache_hit is True
        assert db.metrics.counters["compile_cache_hits"] == 1
        assert db.metrics.counters["compile_cache_misses"] == 1
        # A cache hit pays no parse/rewrite time.
        assert db.metrics.last.parse_s == 0.0

    def test_failed_query_is_recorded(self, db):
        with pytest.raises(SQLPPError):
            db.execute("SELECT FROM")
        assert db.metrics.last.status == "error"
        assert db.metrics.last.error
        assert db.metrics.counters["queries_failed"] == 1

    def test_exhausted_query_is_recorded_distinctly(self, db):
        with pytest.raises(ResourceExhausted):
            db.execute(
                "SELECT a.v FROM r AS a, r AS b, r AS c", max_rows=50
            )
        assert db.metrics.last.status == "resource_exhausted"
        assert db.metrics.counters["queries_resource_exhausted"] == 1
        assert db.metrics.counters["queries_failed"] == 0


class TestCounters:
    def test_rows_returned_accumulate(self, db):
        db.execute("SELECT VALUE a.v FROM r AS a")
        db.execute("SELECT VALUE a.v FROM r AS a WHERE a.v < 5")
        assert db.metrics.counters["rows_returned_total"] == 15
        assert db.metrics.counters["queries_total"] == 2

    def test_snapshot_shape(self, db):
        db.execute("SELECT VALUE 1")
        snapshot = db.metrics.snapshot()
        assert snapshot["counters"]["queries_total"] == 1
        assert snapshot["last_query"]["status"] == "ok"
        text = db.metrics.format_snapshot()
        assert "queries_total: 1" in text


class TestInMemorySink:
    def test_ring_buffer_keeps_recent(self):
        sink = InMemorySink(capacity=2)
        for number in range(3):
            sink.emit(QueryMetrics(query=f"q{number}"))
        assert [m.query for m in sink.tail()] == ["q1", "q2"]

    def test_registry_always_has_memory_sink(self, db):
        db.execute("SELECT VALUE 1")
        assert [m.query for m in db.metrics.memory.tail()] == ["SELECT VALUE 1"]


class TestJsonLinesSink:
    def test_records_append_as_json(self, tmp_path, db):
        path = tmp_path / "log.jsonl"
        db.metrics.sinks.append(JsonLinesSink(str(path)))
        db.execute("SELECT VALUE a.v FROM r AS a")
        db.execute("SELECT VALUE 2")
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        record = json.loads(lines[0])
        assert record["status"] == "ok"
        assert record["rows_returned"] == 10

    def test_threshold_filters_fast_queries(self, tmp_path, db):
        path = tmp_path / "slow.jsonl"
        db.metrics.sinks.append(JsonLinesSink(str(path), threshold_s=60.0))
        db.execute("SELECT VALUE 1")
        assert not path.exists() or path.read_text() == ""

    def test_errors_always_logged(self, tmp_path, db):
        path = tmp_path / "slow.jsonl"
        db.metrics.sinks.append(JsonLinesSink(str(path), threshold_s=60.0))
        with pytest.raises(SQLPPError):
            db.execute("SELECT FROM")
        record = json.loads(path.read_text().splitlines()[0])
        assert record["status"] == "error"


class TestDatabaseSinkWiring:
    def test_constructor_accepts_sinks(self, tmp_path):
        path = tmp_path / "log.jsonl"
        database = Database(metrics_sinks=[JsonLinesSink(str(path))])
        database.execute("SELECT VALUE 1")
        assert json.loads(path.read_text().splitlines()[0])["status"] == "ok"
