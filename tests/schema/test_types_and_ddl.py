"""Schema types, the DDL parser, and Listing 5's UNIONTYPE."""

import pytest

from repro.errors import SchemaError
from repro.schema import (
    AnyType,
    ArrayType,
    BagType,
    BooleanType,
    FloatType,
    IntegerType,
    NullType,
    StringType,
    StructField,
    StructType,
    UnionType,
    element_attribute_names,
    parse_schema,
)


class TestParseTypeExpressions:
    def test_scalars(self):
        assert parse_schema("INT") == IntegerType()
        assert parse_schema("string") == StringType()
        assert parse_schema("DOUBLE") == FloatType()
        assert parse_schema("BOOLEAN") == BooleanType()
        assert parse_schema("ANY") == AnyType()
        assert parse_schema("NULL") == NullType()

    def test_collections(self):
        assert parse_schema("ARRAY<INT>") == ArrayType(element=IntegerType())
        assert parse_schema("BAG<STRING>") == BagType(element=StringType())

    def test_nested(self):
        schema = parse_schema("ARRAY<ARRAY<INT>>")
        assert schema.element.element == IntegerType()

    def test_struct_with_modifiers(self):
        schema = parse_schema("STRUCT<id INT, title? STRING NULL>")
        title = schema.field_named("title")
        assert title.optional and title.nullable
        assert not schema.field_named("id").optional

    def test_open_struct(self):
        assert parse_schema("STRUCT<id INT, ...>").open

    def test_union(self):
        schema = parse_schema("UNIONTYPE<STRING, ARRAY<STRING>>")
        assert isinstance(schema, UnionType)
        assert len(schema.alternatives) == 2

    def test_rejects_garbage(self):
        with pytest.raises(SchemaError):
            parse_schema("WAT")
        with pytest.raises(SchemaError):
            parse_schema("INT INT")
        with pytest.raises(SchemaError):
            parse_schema("")


class TestCreateTable:
    def test_listing5_hive_ddl(self):
        schema = parse_schema(
            """
            CREATE TABLE emp_mixed (
              id INT,
              name STRING,
              title STRING,
              projects UNIONTYPE<STRING, ARRAY<STRING>>
            );
            """
        )
        assert isinstance(schema, BagType)
        struct = schema.element
        assert isinstance(struct, StructType)
        assert isinstance(struct.field_named("projects").type, UnionType)

    def test_create_table_requires_parens(self):
        with pytest.raises(SchemaError):
            parse_schema("CREATE TABLE t id INT")


class TestPrinting:
    @pytest.mark.parametrize(
        "text",
        [
            "INT",
            "ARRAY<STRING>",
            "BAG<STRUCT<id INT, title? STRING NULL, ...>>",
            "UNIONTYPE<STRING, ARRAY<STRING>>",
            "STRUCT<>",
        ],
    )
    def test_round_trip(self, text):
        schema = parse_schema(text)
        assert parse_schema(str(schema)) == schema


class TestHelpers:
    def test_element_attribute_names(self):
        schema = parse_schema("BAG<STRUCT<a INT, b STRING>>")
        assert element_attribute_names(schema) == {"a", "b"}

    def test_element_attribute_names_non_struct(self):
        assert element_attribute_names(parse_schema("BAG<INT>")) is None
        assert element_attribute_names(parse_schema("INT")) is None

    def test_struct_field_named(self):
        struct = StructType(fields=(StructField(name="a", type=IntegerType()),))
        assert struct.field_named("a").type == IntegerType()
        assert struct.field_named("zz") is None
