"""SQL-compat subquery coercion (paper, Section V-A).

"When a SQL SELECT appears as a subquery, SQL compatibility requires that
it not be treated simply as being a shorthand of SELECT VALUE.  Rather,
the context of the subquery designates whether the subquery's result
should be coerced into a scalar value (e.g., when ``5 = <subquery>``),
coerced into a collection of scalars (e.g., when ``5 IN <subquery>``),
etc.  None of this implicit 'magic' applies to SELECT VALUE."

The rewriter marks plain-SELECT subqueries in coercing positions with
:class:`~repro.syntax.ast.CoerceSubquery`; this module implements the two
coercions at evaluation time.
"""

from __future__ import annotations

from typing import Any, List

from repro.config import EvalConfig
from repro.datamodel.values import MISSING, Bag, Struct, type_name
from repro.errors import EvaluationError


def _elements(value: Any) -> List[Any]:
    if isinstance(value, Bag):
        return value.to_list()
    if isinstance(value, list):
        return value
    raise EvaluationError(
        f"subquery coercion expects a collection result, got {type_name(value)}"
    )


def _single_attribute(element: Any, config: EvalConfig) -> Any:
    if isinstance(element, Struct) and len(element) == 1:
        return element.values()[0]
    return config.type_error(
        "coerced subquery rows must be single-attribute tuples, got "
        f"{type_name(element)}"
    )


def single_attribute(element: Any, config: EvalConfig) -> Any:
    """Coerce one subquery row to its single attribute's value.

    The per-row building block of :func:`coerce_collection`, exposed so
    the evaluator's streaming ``IN <subquery>`` path can coerce rows as
    they arrive instead of materializing the whole collection first.
    """
    return _single_attribute(element, config)


def coerce_scalar(result: Any, config: EvalConfig) -> Any:
    """Coerce a subquery result to a scalar.

    Empty result → NULL (SQL's scalar-subquery rule); a single row →
    its single attribute's value; more than one row is a cardinality
    error (MISSING in permissive mode, raised in strict mode).
    """
    elements = _elements(result)
    if not elements:
        return None
    if len(elements) > 1:
        if config.is_permissive:
            return MISSING
        raise EvaluationError(
            f"scalar subquery returned {len(elements)} rows"
        )
    return _single_attribute(elements[0], config)


def coerce_collection(result: Any, config: EvalConfig) -> Any:
    """Coerce a subquery result to a collection of values.

    Each single-attribute tuple row contributes its value; the result
    keeps the input's bag/array nature.
    """
    elements = [_single_attribute(item, config) for item in _elements(result)]
    if isinstance(result, list):
        return elements
    return Bag(elements)
