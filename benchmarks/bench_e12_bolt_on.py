"""E12 — first-class nesting vs the "bolt-on" JSON column (Section VIII).

The paper's closing argument: SQL++ "sees collections of document data
as a natural and supportable relaxation as opposed to a 'bolt on'
addition such as a new SQL column type" (its reference [33] compares
against SQL:2016's JSON support).

Workload: point access, multi-path projection and a filter over nested
documents.  The bolt-on engine re-parses the JSON text per path per row;
SQL++ navigates parsed values.  Expected shape: SQL++ wins everywhere,
and the gap *widens with the number of paths extracted* (each extra
JSON_VALUE is another full parse).
"""

import pytest

from repro.baselines.jsoncolumn import JsonColumnDatabase
from repro.datamodel.convert import from_python
from repro.datamodel.values import Bag
from repro.workloads import emp_nested

from conftest import assert_same_bag, make_db

SIZE = 2_000

CASES = {
    "one-path": (
        "SELECT e.name AS name FROM emp AS e",
        {"name": "$.name"},
    ),
    "three-paths": (
        "SELECT e.name AS name, e.title AS title, e.salary AS salary "
        "FROM emp AS e",
        {"name": "$.name", "title": "$.title", "salary": "$.salary"},
    ),
    "filtered": (
        "SELECT e.name AS name, e.salary AS salary FROM emp AS e "
        "WHERE e.salary > 150000",
        None,  # handled specially below
    ),
}


def engines():
    docs = emp_nested(SIZE, fanout=2, seed=88)
    sqlpp = make_db(emp=docs)
    bolt_on = JsonColumnDatabase()
    bolt_on.create_table("emp")
    bolt_on.insert_documents("emp", docs)
    return sqlpp, bolt_on


def bolt_on_run(bolt_on, name):
    if name == "filtered":
        return bolt_on.select(
            "emp",
            {"name": "$.name", "salary": "$.salary"},
            where=lambda row: row["salary"] > 150000,
        )
    return bolt_on.select("emp", CASES[name][1])


@pytest.fixture(scope="module")
def agreement_verified():
    sqlpp, bolt_on = engines()
    for name, (query, __) in CASES.items():
        ours = sqlpp.execute(query)
        theirs = Bag(from_python(bolt_on_run(bolt_on, name)))
        assert_same_bag(ours, theirs)
    return True


@pytest.mark.benchmark(group="E12-bolt-on")
@pytest.mark.parametrize("name", sorted(CASES))
def test_sqlpp_native(benchmark, name, agreement_verified):
    sqlpp, __ = engines()
    query = CASES[name][0]
    benchmark(lambda: sqlpp.execute(query))


@pytest.mark.benchmark(group="E12-bolt-on")
@pytest.mark.parametrize("name", sorted(CASES))
def test_jsoncolumn(benchmark, name, agreement_verified):
    __, bolt_on = engines()
    benchmark(lambda: bolt_on_run(bolt_on, name))
