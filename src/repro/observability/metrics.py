"""Per-query metrics and the per-database metrics registry.

Every ``Database.execute``/``explain_analyze`` call produces one
:class:`QueryMetrics` record — per-phase wall times for the query
pipeline (parse, rewrite, plan, execute), compile-cache hit/miss, result
cardinality and outcome — and feeds it to a :class:`MetricsRegistry`,
which maintains monotonic counters, per-phase latency
:class:`~repro.observability.exposition.Histogram`\\ s, and fans the
record out to its sinks (:mod:`repro.observability.sinks`).

The registry's mutation path (``record`` / ``increment``) is guarded by
a single :class:`threading.Lock`, so one ``Database`` can serve queries
from many threads and ``queries_total`` stays exact; the per-query hot
path takes the lock once, after the query has finished.

:meth:`MetricsRegistry.expose_text` renders everything in the
Prometheus text exposition format (``repro_queries_total``,
``repro_query_seconds_bucket{phase=...}``, compile-cache verdicts), so
a scrape endpoint or the CLI's ``--metrics-out`` is a file write, not a
new mechanism.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.observability.exposition import (
    Histogram,
    expose_counter,
    expose_gauge,
    expose_histogram,
)
from repro.observability.sinks import InMemorySink
from repro.observability.tracer import format_seconds

#: Query text beyond this many characters is truncated in serialized
#: records (sinks write every query; an unbounded generated query must
#: not turn the slow-query log into a second copy of the data).
QUERY_TEXT_LIMIT = 2048

#: The pipeline phases a latency histogram is kept for.
PHASES = ("parse", "rewrite", "plan", "execute", "total")


@dataclass
class QueryMetrics:
    """The observable outcome of one query execution."""

    query: str
    #: "ok", "error" or "resource_exhausted".
    status: str = "ok"
    error: Optional[str] = None
    #: Whether parse+rewrite was served from the compile cache.
    cache_hit: bool = False
    parse_s: float = 0.0
    rewrite_s: float = 0.0
    #: Planner wall time; ``None`` means the planner never ran (the
    #: reference pipeline, strict mode, or a plan-cache hit with no
    #: planning work).  ``0.0`` is a real measurement — without the
    #: sentinel a fast planned query was indistinguishable from
    #: "planner off".
    plan_s: Optional[float] = None
    execute_s: float = 0.0
    total_s: float = 0.0
    #: Top-level result cardinality (None for scalar/error results).
    rows_returned: Optional[int] = None
    #: Whether any query block ran on the streaming (pipelined) clause
    #: pipeline — False for the eager reference path (``optimize=False``)
    #: and for shapes that cannot stream (PIVOT, window functions).
    streamed: bool = False
    #: Whether the top-level block ran on the batch (chunk-vectorized)
    #: pipeline (docs/PLANNER.md); implies ``streamed``.
    batched: bool = False
    #: Morsel workers the parallel driver used (0 = serial execution).
    parallel_workers: int = 0
    #: Query-store fingerprint (normalized AST + mode dials + catalog
    #: version) and executed-plan hash, so ad-hoc logs join cleanly
    #: against the store; None when the store is off or compile failed.
    fingerprint: Optional[str] = None
    plan_hash: Optional[str] = None
    #: Codes of the semantic rewrites applied to this query, in firing
    #: order (``SQLPPR01`` ... — docs/REWRITER.md); empty when the
    #: registry is off or nothing matched.  Filled on compile-cache
    #: hits too: the rewrite shaped this execution either way.
    rewrites: List[str] = field(default_factory=list)
    #: Unix timestamp of query start (wall clock, for log correlation).
    started_at: float = field(default_factory=time.time)

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready representation (used by the JSON-lines sink).

        Query text is truncated to :data:`QUERY_TEXT_LIMIT` characters,
        with ``query_truncated`` flagging when it happened.
        """
        truncated = len(self.query) > QUERY_TEXT_LIMIT
        return {
            "query": self.query[:QUERY_TEXT_LIMIT],
            "query_truncated": truncated,
            "status": self.status,
            "error": self.error,
            "cache_hit": self.cache_hit,
            "parse_s": round(self.parse_s, 6),
            "rewrite_s": round(self.rewrite_s, 6),
            "plan_s": round(self.plan_s, 6) if self.plan_s is not None else None,
            "execute_s": round(self.execute_s, 6),
            "total_s": round(self.total_s, 6),
            "rows_returned": self.rows_returned,
            "streamed": self.streamed,
            "batched": self.batched,
            "parallel_workers": self.parallel_workers,
            "fingerprint": self.fingerprint,
            "plan_hash": self.plan_hash,
            "rewrites": list(self.rewrites),
            "started_at": self.started_at,
        }

    def format_phases(self) -> List[str]:
        """Phase-timing lines shared by ``--stats`` and EXPLAIN ANALYZE."""
        cache = "hit" if self.cache_hit else "miss"
        lines = [
            f"parse:    {format_seconds(self.parse_s)}",
            f"rewrite:  {format_seconds(self.rewrite_s)}  "
            f"(compile cache: {cache})",
        ]
        if self.plan_s is not None:
            lines.append(f"plan:     {format_seconds(self.plan_s)}")
        lines.append(f"execute:  {format_seconds(self.execute_s)}")
        lines.append(f"total:    {format_seconds(self.total_s)}")
        return lines


#: counter name → (exposed metric name, help text).
_COUNTER_METRICS = {
    "queries_total": (
        "repro_queries_total",
        "Queries executed (any outcome).",
    ),
    "queries_failed": (
        "repro_queries_failed_total",
        "Queries that raised a SQL++ error.",
    ),
    "queries_resource_exhausted": (
        "repro_queries_resource_exhausted_total",
        "Queries stopped by a resource limit.",
    ),
    "rows_returned_total": (
        "repro_rows_returned_total",
        "Top-level result rows returned by successful queries.",
    ),
}


class MetricsRegistry:
    """Counters, latency histograms and a fan-out of per-query records.

    All mutation goes through one :class:`threading.Lock`; reads used
    by tests and the REPL (``snapshot``, ``expose_text``) take the same
    lock so they observe a consistent point in time.
    """

    def __init__(self, sinks: Optional[List[Any]] = None):
        self.counters: Dict[str, int] = {
            "queries_total": 0,
            "queries_failed": 0,
            "queries_resource_exhausted": 0,
            "rows_returned_total": 0,
            "compile_cache_hits": 0,
            "compile_cache_misses": 0,
        }
        #: Per-phase latency histograms (shared log-spaced buckets).
        self.histograms: Dict[str, Histogram] = {
            phase: Histogram() for phase in PHASES
        }
        self.memory = InMemorySink()
        self.sinks: List[Any] = [self.memory] + list(sinks or [])
        self.last: Optional[QueryMetrics] = None
        #: Gauge families set wholesale by collaborators (the query
        #: store): name → (help text, [(labels, value), ...]).
        self.gauges: Dict[str, Any] = {}
        self._lock = threading.Lock()

    def increment(self, name: str, by: int = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + by

    def set_gauge(self, name: str, help_text: str, samples) -> None:
        """Replace one gauge family's samples (gauges describe current
        state, so wholesale replacement is the right update model)."""
        with self._lock:
            self.gauges[name] = (help_text, list(samples))

    def record(self, metrics: QueryMetrics) -> None:
        """Fold one finished query into counters, histograms and sinks.

        One lock acquisition covers the whole fold, so concurrent
        recorders cannot interleave a counter bump with a histogram
        observation and every sink sees records one at a time.
        """
        with self._lock:
            counters = self.counters
            counters["queries_total"] += 1
            if metrics.status == "error":
                counters["queries_failed"] += 1
            elif metrics.status == "resource_exhausted":
                counters["queries_resource_exhausted"] += 1
            if metrics.rows_returned is not None:
                counters["rows_returned_total"] += metrics.rows_returned
            histograms = self.histograms
            histograms["parse"].observe(metrics.parse_s)
            histograms["rewrite"].observe(metrics.rewrite_s)
            if metrics.plan_s is not None:
                histograms["plan"].observe(metrics.plan_s)
            histograms["execute"].observe(metrics.execute_s)
            histograms["total"].observe(metrics.total_s)
            self.last = metrics
            for sink in self.sinks:
                sink.emit(metrics)

    def close(self) -> None:
        """Release sink resources (open log files); safe to call twice."""
        with self._lock:
            for sink in self.sinks:
                close = getattr(sink, "close", None)
                if close is not None:
                    close()

    def snapshot(self) -> Dict[str, Any]:
        """A point-in-time view: counters plus the last query's record."""
        with self._lock:
            return {
                "counters": dict(self.counters),
                "last_query": self.last.to_dict() if self.last else None,
            }

    def format_snapshot(self) -> str:
        """Human-readable form of :meth:`snapshot` (REPL ``.stats``)."""
        with self._lock:
            lines = ["counters:"]
            for name in sorted(self.counters):
                lines.append(f"  {name}: {self.counters[name]}")
            if self.last is not None:
                lines.append("last query:")
                lines.append(f"  status: {self.last.status}")
                if self.last.error:
                    lines.append(f"  error: {self.last.error}")
                if self.last.rows_returned is not None:
                    lines.append(f"  rows: {self.last.rows_returned}")
                lines.extend("  " + line for line in self.last.format_phases())
            return "\n".join(lines)

    def expose_text(self) -> str:
        """The registry in Prometheus text exposition format (0.0.4).

        Every line is a ``# HELP``/``# TYPE`` header or a
        ``name{labels} value`` sample; ends with a trailing newline as
        the format requires.
        """
        with self._lock:
            lines: List[str] = []
            for counter_name, (metric, help_text) in _COUNTER_METRICS.items():
                lines.extend(
                    expose_counter(
                        metric, help_text, [({}, self.counters[counter_name])]
                    )
                )
            lines.extend(
                expose_counter(
                    "repro_compile_cache_requests_total",
                    "Compile-cache lookups by result.",
                    [
                        ({"result": "hit"}, self.counters["compile_cache_hits"]),
                        (
                            {"result": "miss"},
                            self.counters["compile_cache_misses"],
                        ),
                    ],
                )
            )
            rewrite_counters = sorted(
                name
                for name in self.counters
                if name.startswith("rewrites_fired:")
            )
            if rewrite_counters:
                lines.extend(
                    expose_counter(
                        "repro_rewrites_fired_total",
                        "Semantic rewrite-rule firings by rule code.",
                        [
                            (
                                {"rule": name.split(":", 1)[1]},
                                self.counters[name],
                            )
                            for name in rewrite_counters
                        ],
                    )
                )
            extra = sorted(
                name
                for name in self.counters
                if name not in _COUNTER_METRICS
                and name not in ("compile_cache_hits", "compile_cache_misses")
                and not name.startswith("rewrites_fired:")
            )
            for name in extra:
                lines.extend(
                    expose_counter(
                        f"repro_{name}",
                        f"Ad-hoc counter {name}.",
                        [({}, self.counters[name])],
                    )
                )
            for name in sorted(self.gauges):
                help_text, samples = self.gauges[name]
                lines.extend(expose_gauge(name, help_text, samples))
            lines.extend(
                expose_histogram(
                    "repro_query_seconds",
                    "Query pipeline wall time by phase, in seconds.",
                    self.histograms,
                    label_name="phase",
                )
            )
            return "\n".join(lines) + "\n"
