"""The ORDER BY total order."""

import math

from repro.datamodel.ordering import sort_key
from repro.datamodel.values import MISSING, Bag, Struct


def sorted_values(values):
    return sorted(values, key=sort_key)


class TestTypeRanks:
    def test_cross_type_order(self):
        values = [Struct({"a": 1}), "s", 3, True, None, MISSING, [1], Bag([1])]
        ordered = sorted_values(values)
        assert ordered[0] is MISSING
        assert ordered[1] is None
        assert ordered[2] is True
        assert ordered[3] == 3
        assert ordered[4] == "s"
        assert ordered[5] == [1]
        assert isinstance(ordered[6], Struct)
        assert isinstance(ordered[7], Bag)

    def test_every_pair_is_comparable(self):
        values = [MISSING, None, False, 1, 2.5, "a", [], [1], Struct(), Bag()]
        for left in values:
            for right in values:
                # Must not raise.
                sort_key(left) < sort_key(right)  # noqa: B015


class TestWithinType:
    def test_booleans(self):
        assert sorted_values([True, False]) == [False, True]

    def test_numbers_mix_int_float(self):
        assert sorted_values([2, 1.5, 3]) == [1.5, 2, 3]

    def test_nan_sorts_below_numbers(self):
        ordered = sorted_values([1.0, float("nan"), -math.inf])
        assert math.isnan(ordered[0])
        assert ordered[1] == -math.inf

    def test_strings_lexicographic(self):
        assert sorted_values(["b", "a", "ab"]) == ["a", "ab", "b"]

    def test_arrays_lexicographic(self):
        assert sorted_values([[2], [1, 9], [1]]) == [[1], [1, 9], [2]]

    def test_structs_by_sorted_pairs(self):
        ordered = sorted_values([Struct({"b": 1}), Struct({"a": 1})])
        assert ordered[0].keys() == ["a"]

    def test_bags_permutation_insensitive(self):
        assert sort_key(Bag([2, 1])) == sort_key(Bag([1, 2]))

    def test_deterministic(self):
        values = [3, "x", None, [1, "a"], Struct({"k": Bag([1])})]
        assert sorted_values(values) == sorted_values(list(reversed(values)))
