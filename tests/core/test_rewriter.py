"""The sugar → Core rewriter itself, observed through ``explain``."""

import pytest



@pytest.fixture
def edb(db):
    db.set("emp", [{"name": "a", "deptno": 1, "salary": 10}])
    db.set("dept", [{"deptno": 1, "dname": "eng"}])
    return db


class TestSelectSugar:
    def test_select_list_lowers_to_select_value(self, edb):
        plan = edb.explain("SELECT e.name AS n FROM emp AS e")
        assert "SELECT VALUE {'n': e.name}" in plan

    def test_inferred_aliases_in_struct(self, edb):
        plan = edb.explain("SELECT e.name, e.salary FROM emp AS e")
        assert "'name': e.name" in plan
        assert "'salary': e.salary" in plan

    def test_lowering_happens_in_core_mode_too(self, edb):
        plan = edb.explain("SELECT e.name AS n FROM emp AS e", sql_compat=False)
        assert "SELECT VALUE" in plan

    def test_select_value_untouched(self, edb):
        plan = edb.explain("SELECT VALUE e FROM emp AS e")
        assert plan == "SELECT VALUE e FROM emp AS e"


class TestAggregateSugar:
    def test_listing15_shape(self, edb):
        plan = edb.explain(
            "SELECT AVG(e.salary) AS avgsal FROM emp AS e WHERE e.title = 'x'"
        )
        assert "COLL_AVG" in plan
        assert "GROUP AS" in plan
        assert "SELECT VALUE" in plan

    def test_count_star_becomes_count_of_ones(self, edb):
        plan = edb.explain("SELECT COUNT(*) AS n FROM emp AS e")
        assert "COLL_COUNT((SELECT VALUE 1" in plan

    def test_group_key_replaced_by_alias(self, edb):
        plan = edb.explain(
            "SELECT e.deptno, AVG(e.salary) AS a FROM emp AS e GROUP BY e.deptno"
        )
        # The SELECT references the key alias, not the dead variable e.
        assert "{'deptno': deptno" in plan

    def test_distinct_aggregate(self, edb):
        plan = edb.explain("SELECT COUNT(DISTINCT e.deptno) AS n FROM emp AS e")
        assert "SELECT DISTINCT VALUE" in plan

    def test_no_aggregate_rewrite_in_core_mode(self, edb):
        plan = edb.explain(
            "SELECT VALUE AVG([1, 2]) FROM emp AS e", sql_compat=False
        )
        assert "GROUP AS" not in plan

    def test_existing_group_as_is_reused(self, edb):
        plan = edb.explain(
            "FROM emp AS e GROUP BY e.deptno AS d GROUP AS grp "
            "SELECT d AS d, COUNT(*) AS n"
        )
        assert "FROM grp AS" in plan


class TestBareColumns:
    def test_single_from_variable(self, edb):
        plan = edb.explain("SELECT name FROM emp AS e WHERE salary > 5")
        assert "e.name" in plan
        assert "e.salary" in plan

    def test_execution_with_bare_columns(self, edb):
        result = list(edb.execute("SELECT name FROM emp AS e"))
        assert result[0]["name"] == "a"

    def test_catalog_names_not_captured(self, edb):
        plan = edb.explain("SELECT e.name FROM emp AS e WHERE EXISTS dept")
        assert "e.dept" not in plan

    def test_group_alias_not_captured(self, edb):
        plan = edb.explain(
            "SELECT d FROM emp AS e GROUP BY e.deptno AS d"
        )
        assert "{'d': d}" in plan

    def test_core_mode_requires_explicit_variables(self, edb):
        from repro.errors import BindingError

        with pytest.raises(BindingError):
            edb.execute("SELECT name FROM emp AS e", sql_compat=False)

    def test_two_from_vars_without_schema_unresolved(self, edb):
        from repro.errors import BindingError

        with pytest.raises(BindingError):
            edb.execute("SELECT name FROM emp AS e, dept AS d")

    def test_schema_disambiguates_across_two_tables(self, edb):
        edb.set_schema(
            "emp", "BAG<STRUCT<name STRING, deptno INT, salary INT>>"
        )
        edb.set_schema("dept", "BAG<STRUCT<deptno INT, dname STRING>>")
        result = list(
            edb.execute(
                "SELECT name, dname FROM emp AS e, dept AS d "
                "WHERE e.deptno = d.deptno"
            )
        )
        assert result[0].to_dict() == {"name": "a", "dname": "eng"}

    def test_ambiguous_column_stays_unresolved(self, edb):
        from repro.errors import BindingError

        edb.set_schema("emp", "BAG<STRUCT<deptno INT, ...>>")
        edb.set_schema("dept", "BAG<STRUCT<deptno INT, ...>>")
        with pytest.raises(BindingError):
            edb.execute("SELECT deptno FROM emp AS e, dept AS d")


class TestCoercionMarking:
    def test_scalar_context_marked(self, edb):
        plan = edb.explain("1 = (SELECT e.salary FROM emp AS e)")
        assert "COERCE_SCALAR" in plan

    def test_collection_context_marked(self, edb):
        plan = edb.explain("1 IN (SELECT e.salary FROM emp AS e)")
        assert "COERCE_COLLECTION" in plan

    def test_select_value_not_marked(self, edb):
        plan = edb.explain("1 = (SELECT VALUE e.salary FROM emp AS e)")
        assert "COERCE" not in plan

    def test_core_mode_never_marks(self, edb):
        plan = edb.explain(
            "1 = (SELECT e.salary FROM emp AS e)", sql_compat=False
        )
        assert "COERCE" not in plan

    def test_from_position_not_marked(self, edb):
        plan = edb.explain("SELECT VALUE v FROM (SELECT e.name FROM emp AS e) AS v")
        assert "COERCE" not in plan
