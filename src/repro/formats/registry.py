"""Format registry: name → codec, plus file helpers.

Codecs expose ``loads(text_or_bytes) -> value`` and
``dumps(value) -> text_or_bytes``; binary codecs set ``binary=True``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.errors import FormatError
from repro.formats import cbor_io, csv_io, ion_io, json_io, sqlpp_text


@dataclass(frozen=True)
class Format:
    """One registered data format."""

    name: str
    loads: Callable[[Any], Any]
    dumps: Callable[[Any], Any]
    binary: bool = False
    extensions: tuple = ()


FORMATS: Dict[str, Format] = {}


def register(fmt: Format) -> None:
    FORMATS[fmt.name] = fmt


register(
    Format(
        name="sqlpp",
        loads=sqlpp_text.loads,
        dumps=sqlpp_text.dumps,
        extensions=(".sqlpp", ".adm"),
    )
)
register(
    Format(name="json", loads=json_io.loads, dumps=json_io.dumps, extensions=(".json",))
)
register(
    Format(name="csv", loads=csv_io.loads, dumps=csv_io.dumps, extensions=(".csv",))
)
register(
    Format(
        name="cbor",
        loads=cbor_io.loads,
        dumps=cbor_io.dumps,
        binary=True,
        extensions=(".cbor",),
    )
)
register(
    Format(name="ion", loads=ion_io.loads, dumps=ion_io.dumps, extensions=(".ion", ".10n"))
)


def _resolve(path: str, format: Optional[str]) -> Format:
    if format is not None:
        try:
            return FORMATS[format.lower()]
        except KeyError:
            raise FormatError(f"unknown format {format!r}") from None
    extension = os.path.splitext(path)[1].lower()
    for fmt in FORMATS.values():
        if extension in fmt.extensions:
            return fmt
    raise FormatError(f"cannot infer format from extension {extension!r}")


def read_text(text: Any, format: str) -> Any:
    """Parse a value from text/bytes in the named format."""
    try:
        fmt = FORMATS[format.lower()]
    except KeyError:
        raise FormatError(f"unknown format {format!r}") from None
    return fmt.loads(text)


def write_text(value: Any, format: str) -> Any:
    """Serialise a value to text/bytes in the named format."""
    try:
        fmt = FORMATS[format.lower()]
    except KeyError:
        raise FormatError(f"unknown format {format!r}") from None
    return fmt.dumps(value)


def read_file(path: str, format: Optional[str] = None) -> Any:
    """Read and parse a file (format inferred from the extension)."""
    fmt = _resolve(path, format)
    mode = "rb" if fmt.binary else "r"
    with open(path, mode) as handle:
        return fmt.loads(handle.read())


def write_file(value: Any, path: str, format: Optional[str] = None) -> None:
    """Serialise a value into a file (format inferred from the extension)."""
    fmt = _resolve(path, format)
    mode = "wb" if fmt.binary else "w"
    with open(path, mode) as handle:
        handle.write(fmt.dumps(value))
