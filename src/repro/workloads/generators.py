"""Deterministic synthetic workloads.

Every generator is a pure function of its parameters (seeded
``random.Random``), so benchmark runs and property tests are
reproducible.  The workloads scale the paper's three example domains:

* the HR domain of Sections III–V (employees with nested projects),
  in nested, flat and normalised (two-table) layouts;
* the stock-price domain of Section VI (wide one-column-per-symbol and
  tall one-row-per-observation layouts, for PIVOT/UNPIVOT);
* a heterogeneous event log for the typing-mode experiments of
  Section IV, with a controllable fraction of "dirty" rows.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Tuple

_TITLES = ("Engineer", "Manager", "Analyst", "Designer", None)
_PROJECT_THEMES = (
    "Serverless Query",
    "OLAP Security",
    "OLTP Security",
    "Storage Engine",
    "Query Optimizer",
    "Replication",
)
_FIRST = ("Bob", "Susan", "Jane", "Ravi", "Mei", "Tomás", "Aisha", "Lena")
_LAST = ("Smith", "García", "Chen", "Okafor", "Kumar", "Novak")


def emp_nested(
    count: int, fanout: int = 4, seed: int = 7, scalar_projects: bool = False
) -> List[Dict[str, Any]]:
    """Employees with a nested ``projects`` array.

    ``fanout`` is the mean number of projects; ``scalar_projects``
    switches between arrays of tuples (Listing 1) and arrays of strings
    (Listing 3).
    """
    rng = random.Random(seed)
    employees = []
    for emp_id in range(count):
        project_count = rng.randint(0, 2 * fanout)
        projects: List[Any] = []
        for __ in range(project_count):
            name = rng.choice(_PROJECT_THEMES)
            projects.append(name if scalar_projects else {"name": name})
        employees.append(
            {
                "id": emp_id,
                "name": f"{rng.choice(_FIRST)} {rng.choice(_LAST)}",
                "title": rng.choice(_TITLES),
                "deptno": rng.randint(1, max(1, count // 50 + 1)),
                "salary": rng.randint(50, 200) * 1000,
                "projects": projects,
            }
        )
    return employees


def emp_flat(count: int, seed: int = 7) -> List[Dict[str, Any]]:
    """A flat, fully-typed employee table (the SQL-compatible case)."""
    rng = random.Random(seed)
    return [
        {
            "id": emp_id,
            "name": f"{rng.choice(_FIRST)} {rng.choice(_LAST)}",
            "title": rng.choice(_TITLES[:-1]),
            "deptno": rng.randint(1, max(1, count // 50 + 1)),
            "salary": rng.randint(50, 200) * 1000,
        }
        for emp_id in range(count)
    ]


def emp_normalized(
    count: int, fanout: int = 4, seed: int = 7
) -> Tuple[List[Dict[str, Any]], List[Dict[str, Any]]]:
    """The nested HR data normalised into (employees, project_rows).

    The classic relational layout a SQL-92 system needs: the nested
    array becomes a child table with a foreign key, so experiment E3 can
    compare left-correlated unnesting against the equivalent join.
    """
    employees = emp_nested(count, fanout=fanout, seed=seed)
    flat_employees = []
    project_rows = []
    for employee in employees:
        flat_employees.append(
            {key: value for key, value in employee.items() if key != "projects"}
        )
        for position, project in enumerate(employee["projects"]):
            project_rows.append(
                {
                    "emp_id": employee["id"],
                    "seq": position,
                    "name": project["name"],
                }
            )
    return flat_employees, project_rows


def emp_with_absent_titles(
    count: int, absent_rate: float, seed: int = 7, use_missing: bool = True
) -> List[Dict[str, Any]]:
    """Employees where a fraction of titles are absent.

    ``use_missing=True`` omits the attribute (Listing 7 style);
    ``use_missing=False`` stores an explicit NULL (Listing 6 style).
    Both variants draw identical rows for a given seed, so results are
    comparable modulo null-vs-absent — the Section IV-B guarantee.
    """
    rng = random.Random(seed)
    employees = []
    for emp_id in range(count):
        employee: Dict[str, Any] = {
            "id": emp_id,
            "name": f"{rng.choice(_FIRST)} {rng.choice(_LAST)}",
            "salary": rng.randint(50, 200) * 1000,
        }
        if rng.random() < absent_rate:
            if not use_missing:
                employee["title"] = None
        else:
            employee["title"] = rng.choice(_TITLES[:-1])
        employees.append(employee)
    return employees


def null_to_missing(rows: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """The d → d′ mutation of Section IV-B: drop NULL-valued attributes."""
    return [
        {key: value for key, value in row.items() if value is not None}
        for row in rows
    ]


def stock_prices_wide(
    days: int, symbols: int, seed: int = 11
) -> List[Dict[str, Any]]:
    """Listing 19 layout at scale: one row per day, one column per symbol."""
    rng = random.Random(seed)
    names = [f"sym{index}" for index in range(symbols)]
    rows = []
    for day in range(days):
        row: Dict[str, Any] = {"date": f"day-{day:05d}"}
        for name in names:
            row[name] = rng.randint(10, 5000)
        rows.append(row)
    return rows


def stock_prices_tall(
    days: int, symbols: int, seed: int = 11
) -> List[Dict[str, Any]]:
    """Listing 27 layout at scale: one row per (date, symbol, price)."""
    wide = stock_prices_wide(days, symbols, seed=seed)
    tall = []
    for row in wide:
        for name, price in row.items():
            if name == "date":
                continue
            tall.append({"date": row["date"], "symbol": name, "price": price})
    return tall


def event_log(
    count: int,
    dirty_rate: float = 0.0,
    seed: int = 13,
    heterogeneous: bool = True,
) -> List[Dict[str, Any]]:
    """A semistructured event log for the Section IV experiments.

    A ``dirty_rate`` fraction of events carries a wrongly-typed
    ``latency`` (a string) — permissive mode should exclude just those
    from numeric derivations, strict mode should stop.  With
    ``heterogeneous``, events also vary in shape: some carry a nested
    ``tags`` array, some a ``user`` tuple, some neither.
    """
    rng = random.Random(seed)
    events = []
    for event_id in range(count):
        event: Dict[str, Any] = {
            "id": event_id,
            "kind": rng.choice(("click", "view", "purchase")),
        }
        if rng.random() < dirty_rate:
            event["latency"] = "n/a"
        else:
            event["latency"] = rng.randint(1, 500)
        if heterogeneous:
            shape = rng.random()
            if shape < 0.3:
                event["tags"] = rng.sample(
                    ["mobile", "eu", "beta", "retry", "cached"], k=rng.randint(1, 3)
                )
            elif shape < 0.5:
                event["user"] = {
                    "uid": rng.randint(1, count),
                    "tier": rng.choice(("free", "pro")),
                }
        events.append(event)
    return events
