"""Named values and the public :class:`Database` facade.

A SQL++ database is a set of *named values* (paper, Section II): a name
— possibly dotted/namespaced like ``hr.emp_nest_tuples`` — associated
with any SQL++ value, not necessarily a collection of homogeneous
tuples.
"""

from repro.catalog.catalog import Catalog
from repro.catalog.database import Database

__all__ = ["Catalog", "Database"]
