"""Structural verifier for physical plans and rewrite-registry output.

The planner and the rewrite registry promise invariants the executor
silently relies on: every operator binds exactly the variables its
FROM item declares, pushed filters only reference variables their
operator binds, hash-join keys resolve on the correct side, row
estimates are non-negative and (for model-derived numbers) obey the
join-output <= product-of-inputs monotonicity law, attached
expressions carry source spans, and the operator tree is a proper
tree (an operator shared between two parents would be double-closed
by close() propagation).  Rewrite output must likewise keep every
synthesized node span-stamped and must not unbind any name that
resolved before the rewrite.

This module machine-checks those promises.  It runs in three places:

* automatically on every produced plan when ``REPRO_VERIFY_PLANS=1``
  (any non-empty value other than ``0``) is set — the CI compat-kit
  sweep runs this way;
* on demand via :meth:`repro.catalog.database.Database.verify_plan`;
* from tests, against deliberately-broken plan fixtures.

Violations raise :class:`PlanVerificationError`, which deliberately is
**not** an :class:`repro.errors.SQLPPError`: parity harnesses that
catch engine errors must not swallow a verifier failure.
"""

from __future__ import annotations

import os
from typing import Any, List, Optional, Sequence, Set

from repro.syntax import ast

#: Relative slack for floating-point estimate comparisons.
_EPSILON = 1e-9


class PlanVerificationError(RuntimeError):
    """A physical plan or rewrite output broke a structural invariant."""

    def __init__(self, violations: List[str]):
        self.violations = list(violations)
        details = "\n".join(f"  - {violation}" for violation in violations)
        super().__init__(
            f"plan verification failed ({len(violations)} violation"
            f"{'s' if len(violations) != 1 else ''}):\n{details}"
        )


def verification_enabled() -> bool:
    """True when ``REPRO_VERIFY_PLANS`` asks for automatic checking."""
    return os.environ.get("REPRO_VERIFY_PLANS", "") not in ("", "0")


def maybe_verify_block_plan(plan: Any) -> None:
    """Verify a freshly-planned block when the env flag is set."""
    if not verification_enabled():
        return
    violations = verify_block_plan(plan)
    if violations:
        raise PlanVerificationError(violations)


def maybe_verify_rewrite(
    pre_core: ast.Query,
    core: ast.Query,
    fired: Sequence[Any],
    catalog_names: Sequence[str] = (),
) -> None:
    """Verify a rewrite-registry output when the env flag is set."""
    if not verification_enabled():
        return
    violations = verify_rewrite(pre_core, core, fired, catalog_names)
    if violations:
        raise PlanVerificationError(violations)


# =========================================================================
# Physical plans
# =========================================================================


def _expr_names(expr: ast.Expr) -> Set[str]:
    from repro.core.planner import free_names

    return free_names(expr)


def _check_span(expr: ast.Expr, where: str, out: List[str]) -> None:
    if expr.line is None:
        from repro.syntax.printer import print_ast

        out.append(
            f"{where}: expression `{print_ast(expr)}` carries no source "
            "span (line is None)"
        )


def _check_vars(op: Any, out: List[str]) -> None:
    """Variable well-formedness for one operator."""
    from repro.core.plan_ops import (
        CorrelatedJoinOp,
        EmptyOp,
        HashJoinOp,
        MaterializeJoinOp,
        ScanOp,
    )
    from repro.core.planner import item_vars

    label = type(op).__name__
    names = getattr(op, "vars", None)
    if not isinstance(names, list) or not all(
        isinstance(name, str) and name for name in names
    ):
        out.append(f"{label}: vars must be a list of non-empty strings")
        return
    if len(set(names)) != len(names):
        out.append(f"{label}: vars contains duplicates: {names}")
    if isinstance(op, ScanOp):
        declared = set(item_vars(op.item))
        if set(names) != declared:
            out.append(
                f"{label}: vars {sorted(names)} != item variables "
                f"{sorted(declared)}"
            )
    elif isinstance(op, (HashJoinOp, MaterializeJoinOp, CorrelatedJoinOp)):
        expected = set(op.left.vars) | set(op.right_vars)
        if set(names) != expected:
            out.append(
                f"{label}: vars {sorted(names)} != left vars + right vars "
                f"{sorted(expected)}"
            )
    elif isinstance(op, EmptyOp):
        pass  # only the generic checks above apply


def _check_filters(op: Any, out: List[str]) -> None:
    """Pushed filters and join keys only reference variables in scope."""
    from repro.core.plan_ops import HashJoinOp

    label = type(op).__name__
    bound = set(getattr(op, "vars", ()) or ())
    for predicate in getattr(op, "filters", ()) or ():
        _check_span(predicate, f"{label} filter", out)
        extra = _expr_names(predicate) - bound
        if extra:
            out.append(
                f"{label}: pushed filter references unbound names "
                f"{sorted(extra)} (operator binds {sorted(bound)})"
            )
    if isinstance(op, HashJoinOp):
        left_bound = set(op.left.vars)
        right_bound = set(op.right_vars)
        for key in op.left_keys:
            extra = _expr_names(key) - left_bound
            if extra:
                out.append(
                    f"{label}: probe key references {sorted(extra)} not "
                    f"bound by the left side {sorted(left_bound)}"
                )
        for key in op.right_keys:
            extra = _expr_names(key) - right_bound
            if extra:
                out.append(
                    f"{label}: build key references {sorted(extra)} not "
                    f"bound by the right side {sorted(right_bound)}"
                )
        for predicate in op.residual:
            _check_span(predicate, f"{label} residual", out)
            extra = _expr_names(predicate) - bound
            if extra:
                out.append(
                    f"{label}: residual ON conjunct references unbound "
                    f"names {sorted(extra)}"
                )


def _check_estimates(op: Any, out: List[str]) -> None:
    """est_rows is never negative; model-derived join estimates obey
    output <= product-of-inputs (feedback overrides are observed
    actuals for this exact plan shape and may exceed the model)."""
    from repro.core.plan_ops import HashJoinOp, MaterializeJoinOp

    label = type(op).__name__
    estimate = getattr(op, "est_rows", None)
    if estimate is not None and estimate < 0:
        out.append(f"{label}: negative row estimate {estimate}")
    if (
        isinstance(op, (HashJoinOp, MaterializeJoinOp))
        and estimate is not None
        and getattr(op, "est_source", "model") == "model"
    ):
        left = getattr(op.left, "est_rows", None)
        right = getattr(op.right, "est_rows", None)
        if left is not None and right is not None:
            bound = left * right
            if op.kind == "LEFT":
                bound = max(bound, left)
            if estimate > bound * (1.0 + _EPSILON):
                out.append(
                    f"{label}: estimate {estimate} exceeds the product of "
                    f"its inputs ({left} x {right} = {bound})"
                )


def verify_block_plan(plan: Any) -> List[str]:
    """Every structural violation in one :class:`BlockPlan` (empty =
    the plan upholds its invariants)."""
    from repro.core.planner import BlockPlan, walk_plan_ops

    violations: List[str] = []
    if not isinstance(plan, BlockPlan):
        return [f"not a BlockPlan: {type(plan).__name__}"]
    if not plan.items:
        violations.append("plan has no items")

    seen_ids: Set[int] = set()
    prefix_vars: Set[str] = set()
    for index, item_plan in enumerate(plan.items):
        ops = list(walk_plan_ops(item_plan.op))
        for op in ops:
            if id(op) in seen_ids:
                violations.append(
                    f"{type(op).__name__} appears more than once in the "
                    "operator tree — close() would propagate twice"
                )
                continue
            seen_ids.add(id(op))
            _check_vars(op, violations)
            _check_filters(op, violations)
            _check_estimates(op, violations)
        prefix_vars |= set(getattr(item_plan.op, "vars", ()) or ())
        for predicate in item_plan.prefix_filters:
            _check_span(predicate, f"item {index + 1} prefix filter", violations)
            extra = _expr_names(predicate) - prefix_vars
            if extra:
                violations.append(
                    f"item {index + 1}: prefix filter references "
                    f"{sorted(extra)}, not bound by any item so far "
                    f"({sorted(prefix_vars)})"
                )
    if plan.residual_where is not None:
        _check_span(plan.residual_where, "residual WHERE", violations)
    if plan.pruned is not None:
        from repro.core.plan_ops import EmptyOp

        shape_ok = len(plan.items) == 1 and isinstance(
            plan.items[0].op, EmptyOp
        )
        if not shape_ok:
            violations.append(
                "plan claims `pruned:` but is not a single EmptyOp"
            )
        if plan.residual_where is not None:
            violations.append("pruned plan still carries a residual WHERE")
    return violations


# =========================================================================
# Rewrite-registry output
# =========================================================================


def verify_rewrite(
    pre_core: ast.Query,
    core: ast.Query,
    fired: Sequence[Any],
    catalog_names: Sequence[str] = (),
) -> List[str]:
    """Every violation in one rewrite-registry application.

    Checks (a) span presence — each node the registry synthesized (not
    present in the input tree) must carry a source span pointing at the
    sugar the user wrote, so downstream lint findings and errors stay
    attributable; (b) binding well-formedness — resolving the rewritten
    query must not surface an unbound name the input resolved fine
    (``SQLPP001``-class regressions introduced by a rewrite are bugs in
    its safety conditions); (c) each firing record carries a span.
    """
    violations: List[str] = []
    if core is pre_core:
        if fired:
            violations.append(
                "registry reports firings but returned the input tree"
            )
        return violations

    original_ids = {id(node) for node in pre_core.walk()}
    unstamped = 0
    for node in core.walk():
        if id(node) in original_ids:
            continue
        if node.line is None:
            unstamped += 1
    if unstamped:
        violations.append(
            f"rewrite synthesized {unstamped} node"
            f"{'s' if unstamped != 1 else ''} without a source span"
        )

    for record in fired:
        if getattr(record, "line", None) is None:
            code = getattr(record, "code", "?")
            violations.append(
                f"rewrite firing {code} records no source position"
            )

    violations.extend(_binding_regressions(pre_core, core, catalog_names))
    return violations


def _binding_regressions(
    pre_core: ast.Query,
    core: ast.Query,
    catalog_names: Sequence[str],
) -> List[str]:
    from repro.analysis.scopes import ScopeResolver

    def unbound(query: ast.Query) -> Set[str]:
        resolver = ScopeResolver(catalog_names=tuple(catalog_names))
        try:
            resolver.check_query(query)
        except Exception:  # pragma: no cover - resolver must not throw
            return set()
        return {
            diagnostic.message
            for diagnostic in resolver.diagnostics
            if diagnostic.code == "SQLPP001"
        }

    before = unbound(pre_core)
    regressions = unbound(core) - before
    return [
        f"rewrite introduced a binding error: {message}"
        for message in sorted(regressions)
    ]
