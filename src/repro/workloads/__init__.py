"""Synthetic workload generators for the benchmark harness."""

from repro.workloads.generators import (
    emp_nested,
    emp_flat,
    emp_normalized,
    emp_with_absent_titles,
    stock_prices_tall,
    stock_prices_wide,
    event_log,
    null_to_missing,
)

__all__ = [
    "emp_nested",
    "emp_flat",
    "emp_normalized",
    "emp_with_absent_titles",
    "stock_prices_tall",
    "stock_prices_wide",
    "event_log",
    "null_to_missing",
]
