"""The SQL++ data model (paper, Section II).

A SQL++ value is one of:

* an *absent* value — ``NULL`` (modelled as Python ``None``) or the
  special value :data:`MISSING`;
* a *scalar* — ``bool``, ``int``, ``float`` or ``str`` (the SQL scalars);
* a *tuple* (a.k.a. struct) — :class:`Struct`, an **unordered** set of
  attribute name/value pairs that, unlike SQL, may contain duplicate
  attribute names;
* a *collection* — an **array** (Python ``list``, ordered) or a **bag**
  (:class:`Bag`, an unordered multiset);
* or any composition thereof, without any homogeneity requirement.

This package also provides SQL++ deep equality (:func:`deep_equals`), the
total order used by ``ORDER BY`` (:func:`sort_key`), hashable grouping keys
(:func:`group_key`) and conversion to/from plain Python data
(:func:`from_python`, :func:`to_python`).
"""

from repro.datamodel.values import (
    MISSING,
    Bag,
    LazyBag,
    Missing,
    Struct,
    is_absent,
    is_collection,
    is_scalar,
    type_name,
)
from repro.datamodel.equality import deep_equals, group_key
from repro.datamodel.ordering import sort_key
from repro.datamodel.convert import from_python, to_python

__all__ = [
    "MISSING",
    "Missing",
    "Bag",
    "LazyBag",
    "Struct",
    "is_absent",
    "is_collection",
    "is_scalar",
    "type_name",
    "deep_equals",
    "group_key",
    "sort_key",
    "from_python",
    "to_python",
]
