"""Unit tests for the value types (paper, Section II)."""

import pickle

import pytest

from repro.datamodel.values import (
    MISSING,
    Bag,
    Missing,
    Struct,
    is_absent,
    is_collection,
    is_scalar,
    type_name,
)


class TestMissing:
    def test_singleton(self):
        assert Missing() is MISSING
        assert Missing() is Missing()

    def test_falsy(self):
        assert not MISSING

    def test_repr(self):
        assert repr(MISSING) == "MISSING"

    def test_pickle_preserves_singleton(self):
        assert pickle.loads(pickle.dumps(MISSING)) is MISSING

    def test_distinct_from_none(self):
        assert MISSING is not None
        assert (MISSING == None) is False  # noqa: E711 - identity semantics


class TestStruct:
    def test_from_dict(self):
        struct = Struct({"a": 1, "b": 2})
        assert struct["a"] == 1
        assert struct.keys() == ["a", "b"]

    def test_from_pairs_allows_duplicates(self):
        struct = Struct([("a", 1), ("a", 2)])
        assert len(struct) == 2
        assert struct.get_all("a") == [1, 2]

    def test_get_returns_first_binding(self):
        struct = Struct([("a", 1), ("a", 2)])
        assert struct.get("a") == 1

    def test_get_absent_is_missing(self):
        assert Struct().get("nope") is MISSING

    def test_getitem_absent_raises(self):
        with pytest.raises(KeyError):
            Struct()["nope"]

    def test_contains(self):
        struct = Struct({"a": 1})
        assert "a" in struct
        assert "b" not in struct

    def test_missing_value_rejected(self):
        with pytest.raises(ValueError):
            Struct([("a", MISSING)])

    def test_non_string_name_rejected(self):
        with pytest.raises(TypeError):
            Struct([(1, "x")])

    def test_with_attr_appends(self):
        struct = Struct({"a": 1}).with_attr("b", 2)
        assert struct.items() == [("a", 1), ("b", 2)]

    def test_with_attr_missing_is_noop(self):
        base = Struct({"a": 1})
        assert base.with_attr("b", MISSING) is base

    def test_merged_keeps_duplicates(self):
        merged = Struct({"a": 1}).merged(Struct({"a": 2}))
        assert merged.get_all("a") == [1, 2]

    def test_null_values_allowed(self):
        struct = Struct({"title": None})
        assert struct["title"] is None
        assert "title" in struct

    def test_equality_is_order_insensitive(self):
        assert Struct([("a", 1), ("b", 2)]) == Struct([("b", 2), ("a", 1)])

    def test_inequality_on_values(self):
        assert Struct({"a": 1}) != Struct({"a": 2})

    def test_to_dict_last_duplicate_wins(self):
        assert Struct([("a", 1), ("a", 2)]).to_dict() == {"a": 2}

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(Struct())


class TestBag:
    def test_len_and_iter(self):
        bag = Bag([1, 2, 2])
        assert len(bag) == 3
        assert list(bag) == [1, 2, 2]

    def test_add(self):
        bag = Bag()
        bag.add(5)
        assert bag.to_list() == [5]

    def test_multiset_equality_ignores_order(self):
        assert Bag([1, 2, 3]) == Bag([3, 1, 2])

    def test_multiplicity_matters(self):
        assert Bag([1, 1, 2]) != Bag([1, 2, 2])

    def test_not_equal_to_list(self):
        assert (Bag([1]) == [1]) is False

    def test_repr(self):
        assert repr(Bag([1])) == "<<1>>"


class TestClassifiers:
    @pytest.mark.parametrize("value", [True, 0, 1.5, "s"])
    def test_is_scalar(self, value):
        assert is_scalar(value)

    @pytest.mark.parametrize("value", [None, MISSING, [], Bag(), Struct()])
    def test_not_scalar(self, value):
        assert not is_scalar(value)

    def test_is_collection(self):
        assert is_collection([])
        assert is_collection(Bag())
        assert not is_collection(Struct())
        assert not is_collection("string")

    def test_is_absent(self):
        assert is_absent(None)
        assert is_absent(MISSING)
        assert not is_absent(0)

    @pytest.mark.parametrize(
        "value, name",
        [
            (MISSING, "missing"),
            (None, "null"),
            (True, "boolean"),
            (3, "integer"),
            (3.5, "float"),
            ("x", "string"),
            ([], "array"),
            (Bag(), "bag"),
            (Struct(), "tuple"),
        ],
    )
    def test_type_name(self, value, name):
        assert type_name(value) == name

    def test_type_name_rejects_foreign(self):
        with pytest.raises(TypeError):
            type_name(object())
