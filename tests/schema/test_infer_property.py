"""Property: an inferred schema always validates its own data, and
unify() really is an upper bound."""

from hypothesis import given, settings, strategies as st

from repro.datamodel.convert import from_python
from repro.schema.infer import infer_schema, unify
from repro.schema.validate import validate

json_like = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(2**31), max_value=2**31),
        st.floats(allow_nan=False, allow_infinity=False),
        st.text(max_size=8),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=5), children, max_size=4),
    ),
    max_leaves=20,
).filter(lambda value: value is not None)


@given(json_like)
@settings(max_examples=120)
def test_inferred_schema_validates_its_data(data):
    model = from_python(data)
    validate(model, infer_schema(model))


@given(json_like, json_like)
@settings(max_examples=120)
def test_unify_is_an_upper_bound(left, right):
    left_model, right_model = from_python(left), from_python(right)
    unified = unify(infer_schema(left_model), infer_schema(right_model))
    validate(left_model, unified)
    validate(right_model, unified)


@given(st.lists(json_like, min_size=1, max_size=6))
@settings(max_examples=80)
def test_collection_inference_covers_every_element(items):
    model = from_python(items)
    validate(model, infer_schema(model))
