"""Morsel-driven multi-core execution of partitionable scans.

The batch executor (:mod:`repro.core.vectorized`) asks this module to
fan the base scan of a plan's operator tree across worker processes.
The unit of scheduling is a *morsel* — a contiguous ``(start, stop)``
row span of the materialized base collection — following the
morsel-driven design of Leis et al.: workers pull whole spans, so the
per-task overhead amortizes over thousands of rows, and the parent
merges results in morsel order, which makes the combined output
row-for-row identical to the serial run.

Process model
-------------

Workers are forked (``multiprocessing`` ``fork`` context): the parent
sets a module global with everything a worker needs — the evaluator,
the operator tree, prebuilt hash-join build tables — *before* creating
the pool, so nothing query-sized is pickled on the way in; forked
pages are shared copy-on-write.  Only results travel back through
pickling.  Two result modes:

* ``rows`` — workers return their morsel's binding rows; the parent
  runs the remaining clauses (LET, residual WHERE, grouping) serially.
* ``fold`` — workers fold their morsel into decomposed GROUP BY
  accumulator state (:func:`repro.core.vectorized.fold_chunk`) and
  return the compact per-group state; the parent merges.

Observability and limits compose across the fork: each worker runs a
fresh :class:`~repro.observability.ExecTracer` and returns per-operator
tallies keyed by a deterministic pre-order operator index, which the
parent merges into its own tracer at the barrier; each worker's forked
:class:`ResourceGovernor` enforces timeout/max_rows locally (the
monotonic deadline survives the fork), and the parent re-accounts the
workers' row deltas at the barrier so the global ``max_rows`` budget is
enforced across the whole fan-out.  Worker errors are returned as
picklable descriptors and re-raised in the parent; any infrastructure
failure (pool creation, unpicklable results) falls back to the serial
batch path — parallelism is an optimization, never a semantic change.

Anything not partitionable — lazy sources, small inputs, operator
trees with non-scan spines — returns None and runs serially.
"""

from __future__ import annotations

import math
import multiprocessing
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, List, Optional, Tuple

from repro import errors
from repro.core.environment import Environment, Unbound
from repro.core.plan_ops import HashJoinOp, ScanOp
from repro.core.vectorized import (
    Decomposition,
    GroupState,
    build_fold_fns,
    fold_chunk,
    merge_folds,
)

Binding = Dict[str, Any]

#: Scans below this many base rows are not worth forking for.
#: Module-level so tests can monkeypatch it down.
MIN_PARALLEL_ROWS = 2048

#: Minimum morsel span; spans are sized so each worker gets ~4 morsels
#: (work stealing via the pool's task queue) but never smaller than
#: this.
MIN_MORSEL_ROWS = 1024

#: Worker-side state installed by the parent immediately before the
#: fork; inherited by workers, never pickled.
_WORKER_STATE: Optional[Dict[str, Any]] = None


@dataclass
class ParallelOutcome:
    """What a successful parallel run hands back to the batch executor."""

    mode: str  # "rows" | "fold"
    workers: int
    #: Total binding rows the workers produced (pre any parent-side
    #: filtering) — the FROM stage tally.
    rows_seen: int = 0
    #: Parent-side wall time of the whole fan-out.
    elapsed: float = 0.0
    rows: List[Binding] = field(default_factory=list)
    order: List[tuple] = field(default_factory=list)
    groups: GroupState = field(default_factory=dict)


def _spine(op) -> Optional[Tuple[ScanOp, List[HashJoinOp]]]:
    """The probe spine of an operator tree: the chain of hash joins
    down the left side ending in a morsel-capable base scan, or None."""
    joins: List[HashJoinOp] = []
    node = op
    while isinstance(node, HashJoinOp):
        joins.append(node)
        node = node.left
    if not isinstance(node, ScanOp):
        return None
    return node, joins


def _enumerate_ops(op) -> List[Any]:
    """Pre-order enumeration of an operator tree — the deterministic
    index space worker tallies are keyed by (identical in parent and
    forked children since the tree itself is inherited)."""
    result = [op]
    for attr in ("left", "right"):
        child = getattr(op, attr, None)
        if child is not None:
            result.extend(_enumerate_ops(child))
    return result


def _run_morsel(span: Tuple[int, int]):
    """Worker entry: run one morsel and return a picklable result.

    Runs in a forked child.  The evaluator object is the parent's
    (inherited); the tracer is replaced per task so tallies cover
    exactly this morsel, and the governor delta is measured from the
    task's start so a pool worker serving several morsels never
    double-reports.
    """
    state = _WORKER_STATE
    evaluator = state["evaluator"]
    env = state["env"]
    op = state["op"]
    parent_tracer = state["traced"]
    tracer = None
    if parent_tracer:
        from repro.observability import ExecTracer

        tracer = ExecTracer(timing=state["timing"])
    evaluator.tracer = tracer
    governor = evaluator.governor
    governor_base = governor.rows if governor is not None else 0
    try:
        rows_seen = 0
        if state["mode"] == "fold":
            key_fns, value_fns = build_fold_fns(
                evaluator, state["decomp"], state["row_vars"]
            )
            groups: GroupState = {}
            order: List[tuple] = []
            for chunk in op.iter_chunks(
                evaluator, env, morsel=span, tables=state["tables"]
            ):
                rows_seen += len(chunk)
                fold_chunk(chunk, env, key_fns, value_fns, groups, order)
            payload: Any = (order, groups)
        else:
            rows: List[Binding] = []
            for chunk in op.iter_chunks(
                evaluator, env, morsel=span, tables=state["tables"]
            ):
                rows.extend(chunk)
            rows_seen = len(rows)
            payload = rows
    except errors.ResourceExhausted as error:
        return (
            "error",
            "ResourceExhausted",
            str(error),
            {
                "kind": error.kind,
                "rows_produced": error.rows_produced,
                "elapsed_s": error.elapsed_s,
            },
        )
    except errors.SQLPPError as error:
        return ("error", type(error).__name__, str(error), None)
    except Unbound as unbound:
        return ("unbound", unbound.name)
    tallies: List[Tuple[int, int, int, int, float]] = []
    if tracer is not None:
        for index, node in enumerate(state["op_list"]):
            stats = tracer.op_stats(node)
            if stats is not None:
                tallies.append(
                    (
                        index,
                        stats.invocations,
                        stats.rows_in,
                        stats.rows_out,
                        stats.time_s,
                    )
                )
    governor_delta = (
        governor.rows - governor_base if governor is not None else 0
    )
    return ("ok", rows_seen, payload, tallies, governor_delta)


def _rebuild_error(name: str, message: str, extras: Optional[Dict]) -> Exception:
    """Reconstruct a worker's error in the parent process."""
    if name == "ResourceExhausted" and extras is not None:
        return errors.ResourceExhausted(message, **extras)
    cls = getattr(errors, name, None)
    if isinstance(cls, type) and issubclass(cls, errors.SQLPPError):
        try:
            return cls(message)
        except TypeError:
            pass
    return errors.EvaluationError(message)


def try_parallel(
    evaluator,
    item_plan,
    env: Environment,
    mode: str,
    decomp: Optional[Decomposition],
    row_vars: Tuple[str, ...],
) -> Optional[ParallelOutcome]:
    """Fan the plan's base scan across forked workers, or None.

    None means "run serially" — the input is too small, the tree is
    not partitionable, fork is unavailable, or the pool failed; a
    worker-side *query* error, by contrast, re-raises here exactly as
    the serial path would have raised it.
    """
    global _WORKER_STATE
    config = evaluator.config
    workers = config.parallel
    if workers < 2:
        return None
    if "fork" not in multiprocessing.get_all_start_methods():
        return None
    spine = _spine(item_plan.op)
    if spine is None:
        return None
    scan, joins = spine
    total = scan.morsel_rows(evaluator, env)
    if total is None or total < MIN_PARALLEL_ROWS:
        return None
    if mode == "fold" and decomp is None:
        return None

    started = perf_counter()
    # Build every spine join's hash table in the parent: workers then
    # share the pages copy-on-write instead of re-building per process.
    # (This builds even when the probe side would have filtered down to
    # nothing — the one divergence from the lazy build-on-first-probe
    # of the serial path, documented in docs/PLANNER.md.)
    tables: Dict[int, Any] = {}
    for join in joins:
        tables[id(join)] = join.build_table(evaluator, env)

    span_size = max(math.ceil(total / (workers * 4)), MIN_MORSEL_ROWS)
    spans = [
        (start, min(start + span_size, total))
        for start in range(0, total, span_size)
    ]
    workers = min(workers, len(spans))
    if workers < 2:
        return None

    op_list = _enumerate_ops(item_plan.op)
    parent_tracer = evaluator.tracer
    _WORKER_STATE = {
        "evaluator": evaluator,
        "env": env,
        "op": item_plan.op,
        "tables": tables,
        "mode": mode,
        "decomp": decomp,
        "row_vars": row_vars,
        "op_list": op_list,
        "traced": parent_tracer is not None,
        "timing": parent_tracer.timing if parent_tracer is not None else True,
    }
    try:
        context = multiprocessing.get_context("fork")
        with context.Pool(processes=workers) as pool:
            results = pool.map(_run_morsel, spans)
    except Exception:
        # Infrastructure failure (fork, pickling of results, pool
        # teardown): parallelism silently degrades to the serial batch
        # path, which computes the same answer.
        return None
    finally:
        _WORKER_STATE = None
        evaluator.tracer = parent_tracer

    # Surface the first worker error in morsel (= serial row) order.
    for result in results:
        if result[0] == "error":
            raise _rebuild_error(result[1], result[2], result[3])
        if result[0] == "unbound":
            raise Unbound(result[1])

    outcome = ParallelOutcome(mode=mode, workers=workers)
    governor_delta = 0
    partials: List[Tuple[List[tuple], GroupState]] = []
    for result in results:
        __, rows_seen, payload, tallies, delta = result
        outcome.rows_seen += rows_seen
        governor_delta += delta
        if mode == "fold":
            partials.append(payload)
        else:
            outcome.rows.extend(payload)
        if parent_tracer is not None:
            for index, invocations, rows_in, rows_out, time_s in tallies:
                parent_tracer.merge_op(
                    op_list[index], invocations, rows_in, rows_out, time_s
                )
    if mode == "fold":
        outcome.order, outcome.groups = merge_folds(partials)

    governor = evaluator.governor
    if governor is not None and governor_delta:
        # Re-account the workers' rows against the parent budget: the
        # per-worker governors each saw only their own share, so the
        # global max_rows breach (if any) surfaces here at the barrier.
        governor.add(governor_delta)

    outcome.elapsed = perf_counter() - started
    if parent_tracer is not None and parent_tracer.trace is not None:
        parent_tracer.trace.event(
            "parallel",
            "phase",
            started,
            outcome.elapsed,
            {"workers": workers, "morsels": len(spans), "rows": outcome.rows_seen},
        )
    return outcome
