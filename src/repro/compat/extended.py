"""Extended conformance cases derived from the paper's prose.

The listings pin down the headline examples; these cases pin down the
rules stated in the running text — the three MISSING-producing cases of
Section IV-B, the SQL-compatibility exception, subquery coercion,
FROM-over-anything, the two typing modes — so that an implementation
cannot pass the kit by special-casing the listings.
"""

from __future__ import annotations

from repro.compat.corpus import ConformanceCase, register
from repro.compat.listings import EMP_MISSING, EMP_NULL

# -- Section IV-B, MISSING case 1: navigation ---------------------------------

register(
    ConformanceCase(
        case_id="X-missing-navigation",
        section="IV-B",
        title="Navigation into an absent attribute returns MISSING",
        data={"hr.emp_missing": EMP_MISSING},
        query="""
            SELECT VALUE e.title IS MISSING
            FROM hr.emp_missing AS e
        """,
        expected="{{ true, false, false }}",
    )
)

register(
    ConformanceCase(
        case_id="X-missing-vs-null",
        section="IV-B",
        title="IS MISSING distinguishes what IS NULL conflates",
        data={"hr.emp_null": EMP_NULL},
        query="""
            SELECT VALUE [e.title IS MISSING, e.title IS NULL]
            FROM hr.emp_null AS e
        """,
        expected="{{ [false, true], [false, false], [false, false] }}",
        notes="Bob's title is NULL (present): IS NULL true, IS MISSING false.",
    )
)

# -- Section IV-B, MISSING case 2: wrongly-typed inputs ------------------------

register(
    ConformanceCase(
        case_id="X-type-error-permissive",
        section="IV",
        title="2 * 'some string' is MISSING in permissive mode",
        query="(2 * 'some string') IS MISSING",
        expected="true",
        typing_mode="permissive",
    )
)

register(
    ConformanceCase(
        case_id="X-type-error-strict",
        section="IV",
        title="2 * 'some string' raises in stop-on-error mode",
        query="2 * 'some string'",
        expect_error="TypeCheckError",
        typing_mode="strict",
    )
)

register(
    ConformanceCase(
        case_id="X-healthy-data-proceeds",
        section="IV",
        title="Permissive mode excludes only the offending data",
        data={
            "events": """
                {{
                  {'id': 1, 'latency': 10},
                  {'id': 2, 'latency': 'n/a'},
                  {'id': 3, 'latency': 30}
                }}
            """
        },
        query="""
            SELECT e.id AS id, e.latency * 2 AS doubled
            FROM events AS e
        """,
        expected="""
            {{
              {'id': 1, 'doubled': 20},
              {'id': 2},
              {'id': 3, 'doubled': 60}
            }}
        """,
        notes="The wrongly-typed row keeps flowing; its derived attribute "
        "is simply missing (the 'convenient signal').",
    )
)

# -- Section IV-B, MISSING case 3 and its compatibility exception ---------------

register(
    ConformanceCase(
        case_id="X-missing-propagates",
        section="IV-B",
        title="A function with a MISSING input returns MISSING (Core)",
        query="(UPPER(MISSING) IS MISSING) AND (1 + MISSING IS MISSING)",
        expected="true",
        sql_compat=False,
    )
)

register(
    ConformanceCase(
        case_id="X-coalesce-compat",
        section="IV-B",
        title="COALESCE(MISSING, 2) returns 2 in SQL-compatibility mode",
        query="COALESCE(MISSING, 2)",
        expected="2",
        sql_compat=True,
        notes="The Section IV-B exception, stated with this exact example.",
    )
)

register(
    ConformanceCase(
        case_id="X-coalesce-core",
        section="IV-B",
        title="COALESCE propagates MISSING in Core mode",
        query="COALESCE(MISSING, 2) IS MISSING",
        expected="true",
        sql_compat=False,
    )
)

register(
    ConformanceCase(
        case_id="X-logic-absorption",
        section="IV-B",
        title="Boolean absorption maps MISSING like NULL (both modes)",
        query="[TRUE OR MISSING, FALSE AND MISSING, (TRUE AND MISSING) IS NULL]",
        expected="[true, false, true]",
        notes="AND/OR are SQL expressions that can map NULL to non-NULL, "
        "so MISSING behaves as NULL inside them.",
    )
)

# -- Section IV-B: null-vs-missing output guarantee ----------------------------

register(
    ConformanceCase(
        case_id="X-guarantee-null-input",
        section="IV-B",
        title="Projection over the NULL-typed table",
        data={"hr.emp_null": EMP_NULL},
        query="SELECT e.id, e.title AS title FROM hr.emp_null AS e",
        expected="""
            {{
              {'id': 3, 'title': null},
              {'id': 4, 'title': 'Manager'},
              {'id': 6, 'title': 'Engineer'}
            }}
        """,
    )
)

register(
    ConformanceCase(
        case_id="X-guarantee-missing-input",
        section="IV-B",
        title="The same projection over the missing-attribute table "
        "differs only by absent attributes",
        data={"hr.emp_missing": EMP_MISSING},
        query="SELECT e.id, e.title AS title FROM hr.emp_missing AS e",
        expected="""
            {{
              {'id': 3},
              {'id': 4, 'title': 'Manager'},
              {'id': 6, 'title': 'Engineer'}
            }}
        """,
        notes="Section IV-B guarantee: q(d') equals q(d) except that "
        "null-valued attributes are simply missing.",
    )
)

# -- Section V-A: coercion and its absence -------------------------------------

register(
    ConformanceCase(
        case_id="X-scalar-coercion",
        section="V-A",
        title="A plain-SELECT subquery coerces to a scalar in comparison "
        "position (compat mode)",
        data={"t": "{{ {'a': 5} }}"},
        query="5 = (SELECT x.a FROM t AS x)",
        expected="true",
        sql_compat=True,
    )
)

register(
    ConformanceCase(
        case_id="X-collection-coercion",
        section="V-A",
        title="A plain-SELECT subquery coerces to a collection after IN",
        data={"t": "{{ {'a': 1}, {'a': 5} }}"},
        query="5 IN (SELECT x.a FROM t AS x)",
        expected="true",
        sql_compat=True,
    )
)

register(
    ConformanceCase(
        case_id="X-select-value-never-coerces",
        section="V-A",
        title="SELECT VALUE subqueries are never coerced",
        data={"t": "{{ 5 }}"},
        query="(SELECT VALUE x FROM t AS x) = 5",
        expected="missing",
        sql_compat=True,
        notes="The left side stays a collection; no implicit 'magic' applies "
        "to SELECT VALUE, so ``=`` sees a bag against a number — a "
        "wrongly-typed comparison, MISSING in permissive mode "
        "(Section IV-B rule 2).",
    )
)

register(
    ConformanceCase(
        case_id="X-empty-scalar-subquery",
        section="V-A",
        title="An empty coerced subquery is NULL, as in SQL",
        data={"t": "{{ {'a': 5} }}"},
        query="(SELECT x.a FROM t AS x WHERE x.a > 100) IS NULL",
        expected="true",
        sql_compat=True,
    )
)

# -- Section III: FROM over anything -------------------------------------------

register(
    ConformanceCase(
        case_id="X-from-heterogeneous",
        section="III-A",
        title="One FROM variable ranging over mixed element types",
        data={"mixed": "{{ 1, 'two', [3], {'four': 4} }}"},
        query="SELECT VALUE v FROM mixed AS v",
        expected="{{ 1, 'two', [3], {'four': 4} }}",
    )
)

register(
    ConformanceCase(
        case_id="X-from-scalar-permissive",
        section="III-A",
        title="Ranging over a scalar binds once in permissive mode",
        query="SELECT VALUE v * 10 FROM 4 AS v",
        expected="{{ 40 }}",
        typing_mode="permissive",
    )
)

register(
    ConformanceCase(
        case_id="X-from-scalar-strict",
        section="III-A",
        title="Ranging over a scalar errors in stop-on-error mode",
        query="SELECT VALUE v FROM 4 AS v",
        expect_error="TypeCheckError",
        typing_mode="strict",
    )
)

register(
    ConformanceCase(
        case_id="X-from-missing-excludes",
        section="III-A",
        title="Ranging over an absent nested collection excludes the tuple",
        data={
            "t": """
                {{
                  {'id': 1, 'xs': [10, 20]},
                  {'id': 2}
                }}
            """
        },
        query="SELECT r.id AS id, x AS x FROM t AS r, r.xs AS x",
        expected="{{ {'id': 1, 'x': 10}, {'id': 1, 'x': 20} }}",
    )
)

register(
    ConformanceCase(
        case_id="X-at-position",
        section="III",
        title="AT binds the 0-based position over arrays",
        query="SELECT VALUE [i, v] FROM ['a', 'b'] AS v AT i",
        expected="{{ [0, 'a'], [1, 'b'] }}",
    )
)

# -- Section V: composability odds and ends -------------------------------------

register(
    ConformanceCase(
        case_id="X-select-clause-last",
        section="V-B",
        title="The SELECT clause may come last (pipeline style)",
        data={"t": "{{ {'x': 1}, {'x': 2} }}"},
        query="FROM t AS r WHERE r.x > 1 SELECT VALUE r.x",
        expected="{{ 2 }}",
        sql_compat=False,
    )
)

register(
    ConformanceCase(
        case_id="X-order-by-array",
        section="V-B",
        title="ORDER BY produces an array, absent values first",
        data={"t": "{{ {'x': 2}, {'x': null}, {'x': 1}, {'y': 0} }}"},
        query="SELECT VALUE TYPEOF(r.x) FROM t AS r ORDER BY r.x",
        expected="['missing', 'null', 'integer', 'integer']",
        ordered=True,
        notes="The total order places MISSING before NULL before values.",
    )
)

register(
    ConformanceCase(
        case_id="X-subquery-anywhere",
        section="V-A",
        title="Subqueries compose anywhere an expression may appear",
        data={"n": "{{ 1, 2, 3 }}"},
        query="""
            SELECT VALUE v + COLL_SUM(SELECT VALUE w FROM n AS w)
            FROM (SELECT VALUE x * 10 FROM n AS x) AS v
        """,
        expected="{{ 16, 26, 36 }}",
        sql_compat=False,
    )
)

register(
    ConformanceCase(
        case_id="X-count-star-vs-count",
        section="V-C",
        title="COUNT(*) counts bindings; COUNT(x) skips absent values",
        data={
            "t": "{{ {'x': 1}, {'x': null}, {'y': 9} }}",
        },
        query="SELECT COUNT(*) AS stars, COUNT(r.x) AS xs FROM t AS r",
        expected="{{ {'stars': 3, 'xs': 1} }}",
    )
)

register(
    ConformanceCase(
        case_id="X-aggregate-empty-input",
        section="V-C",
        title="Implicit aggregation over empty input still yields one row",
        data={"t": "{{}}"},
        query="SELECT COUNT(*) AS n, AVG(r.x) AS a FROM t AS r",
        expected="{{ {'n': 0, 'a': null} }}",
    )
)

register(
    ConformanceCase(
        case_id="X-distinct",
        section="V",
        title="DISTINCT uses SQL++ deep equality, across nesting",
        data={"t": "{{ [1, 2], [1, 2], {'a': 1}, {'a': 1}, 1, 1.0 }}"},
        query="SELECT DISTINCT VALUE v FROM t AS v",
        expected="{{ [1, 2], {'a': 1}, 1 }}",
    )
)

register(
    ConformanceCase(
        case_id="X-union-heterogeneous",
        section="V",
        title="Set operations over heterogeneous collections",
        query="(SELECT VALUE v FROM [1, 'a'] AS v) UNION ALL (SELECT VALUE v FROM [{'b': 2}] AS v)",
        expected="{{ 1, 'a', {'b': 2} }}",
    )
)

register(
    ConformanceCase(
        case_id="X-pivot-unpivot-roundtrip",
        section="VI",
        title="UNPIVOT(PIVOT(t)) restores the symbol/price pairs",
        data={
            "today_stock_prices": """
                {{ {'symbol': 'amzn', 'price': 1900},
                   {'symbol': 'goog', 'price': 1120} }}
            """
        },
        query="""
            SELECT sym AS symbol, price AS price
            FROM (PIVOT sp.price AT sp.symbol FROM today_stock_prices sp) AS c,
                 UNPIVOT c AS price AT sym
        """,
        expected="""
            {{ {'symbol': 'amzn', 'price': 1900},
               {'symbol': 'goog', 'price': 1120} }}
        """,
    )
)

register(
    ConformanceCase(
        case_id="X-equality-mismatch-permissive",
        section="IV-B",
        title="Wrongly-typed '=' is MISSING in permissive mode",
        query="SELECT VALUE [v = 'a', (v = 'a') IS MISSING] FROM [1] AS v",
        expected="{{ [true] }}",
        typing_mode="permissive",
        notes="Section IV-B rule 2: ``=`` over mismatched types (here "
        "integer vs string) is a dynamic type error, which permissive "
        "mode maps to MISSING — the MISSING element then vanishes from "
        "the constructed array, leaving only the IS MISSING probe.",
    )
)

register(
    ConformanceCase(
        case_id="X-equality-mismatch-strict",
        section="IV-B",
        title="Wrongly-typed '=' raises in stop-on-error mode",
        query="SELECT VALUE v = 'a' FROM [1] AS v",
        expect_error="TypeCheckError",
        typing_mode="strict",
        notes="The same mismatched comparison stops the query in strict "
        "mode, mirroring the ordering comparators' treatment of "
        "wrongly-typed inputs.",
    )
)
