"""CUBE / ROLLUP / GROUPING SETS expansion.

The paper notes (Section V-B) that SQL's analytical grouping features
"are wholly compatible with SQL++ and then become able to operate on and
produce nested and heterogeneous data."  We implement them the standard
way: expand the clause into a list of grouping sets (subsets of the key
list) and run one grouping pass per set, binding the keys excluded from a
set to NULL in that pass's output.
"""

from __future__ import annotations

from itertools import combinations
from typing import List

from repro.syntax import ast


def expand_grouping_sets(clause: ast.GroupByClause) -> List[List[int]]:
    """The grouping sets of a GROUP BY clause as index lists into keys.

    * simple → one set with every key;
    * ``ROLLUP (a, b, c)`` → ``(a,b,c), (a,b), (a), ()``;
    * ``CUBE (a, b)`` → every subset;
    * ``GROUPING SETS (...)`` → as written.
    """
    indexes = list(range(len(clause.keys)))
    if clause.mode == "simple":
        return [indexes]
    if clause.mode == "rollup":
        return [indexes[:end] for end in range(len(indexes), -1, -1)]
    if clause.mode == "cube":
        sets: List[List[int]] = []
        for size in range(len(indexes), -1, -1):
            for subset in combinations(indexes, size):
                sets.append(list(subset))
        return sets
    if clause.mode == "sets":
        return [list(indexes) for indexes in clause.grouping_sets or []]
    raise ValueError(f"unknown GROUP BY mode {clause.mode!r}")
