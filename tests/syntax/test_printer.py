"""Printer round-trips: parse(print(q)) is structurally identical."""

import pytest

from repro.syntax.parser import parse, parse_expression
from repro.syntax.printer import print_ast

QUERIES = [
    "SELECT VALUE 1",
    "SELECT e.name AS n, p AS q FROM hr.emp AS e, e.projects AS p WHERE p LIKE '%x%'",
    "SELECT DISTINCT VALUE v FROM t AS v",
    "SELECT * FROM t AS t",
    "SELECT e.*, 1 AS one FROM t AS e",
    "FROM t AS x WHERE x.a > 1 GROUP BY LOWER(x.k) AS k GROUP AS g "
    "HAVING COUNT(*) > 1 SELECT VALUE {k: k}",
    "PIVOT sp.price AT sp.symbol FROM today_stock_prices AS sp",
    "SELECT VALUE v FROM UNPIVOT c AS v AT a",
    "SELECT VALUE x FROM t AS x ORDER BY x.a DESC NULLS LAST LIMIT 3 OFFSET 1",
    "SELECT VALUE 1 UNION ALL SELECT VALUE 2",
    "(SELECT VALUE 1) INTERSECT (SELECT VALUE 2)",
    "SELECT VALUE x FROM a AS a LEFT JOIN b AS b ON a.k = b.k LET x = a.k + 1",
    "SELECT VALUE CASE WHEN x > 1 THEN 'big' ELSE 'small' END FROM t AS x",
    "SELECT VALUE RANK() OVER (PARTITION BY x.d ORDER BY x.s) FROM t AS x",
    "SELECT VALUE 1 FROM t AS x GROUP BY ROLLUP (x.a, x.b)",
    "SELECT VALUE 1 FROM t AS x GROUP BY GROUPING SETS ((x.a), ())",
    "SELECT VALUE {{1, 'a', [2], {'k': <<3>>}}}",
    "SELECT VALUE x FROM t AS x WHERE x BETWEEN 1 AND 2 OR x IN (3, 4) "
    "AND x IS NOT MISSING",
    'SELECT c."date" AS "date" FROM closing_prices AS c',
    "SELECT VALUE CAST(x AS INTEGER) FROM t AS x AT i",
]


@pytest.mark.parametrize("source", QUERIES)
def test_query_round_trip(source):
    first = print_ast(parse(source))
    second = print_ast(parse(first))
    assert first == second


EXPRESSIONS = [
    "1 + 2 * 3",
    "-(x.y[0])",
    "a || b || 'c'",
    "NOT (a AND b)",
    "COALESCE(MISSING, NULL, 1)",
    "x NOT LIKE 'a%' ESCAPE '!'",
    "EXISTS (SELECT VALUE 1)",
    "{'k with space': 1, k2: 2}",
    "5 = (SELECT t.a FROM t AS t)",
]


@pytest.mark.parametrize("source", EXPRESSIONS)
def test_expression_round_trip(source):
    first = print_ast(parse_expression(source))
    second = print_ast(parse_expression(first))
    assert first == second


class TestQuoting:
    def test_reserved_word_identifier_is_quoted(self):
        text = print_ast(parse_expression('c."select"'))
        assert '"select"' in text

    def test_string_quote_escaping(self):
        text = print_ast(parse_expression("'it''s'"))
        assert text == "'it''s'"

    def test_odd_identifier_quoted(self):
        text = print_ast(parse_expression('"two words"'))
        assert text == '"two words"'

    def test_float_literals_precise(self):
        assert print_ast(parse_expression("2.5")) == "2.5"

    def test_missing_literal(self):
        assert print_ast(parse_expression("MISSING")) == "MISSING"
