"""Subqueries, coercion (Section V-A), and composability."""

import pytest

from repro import Bag
from repro.errors import EvaluationError

from tests.conftest import bag_of


@pytest.fixture
def tdb(db):
    db.set("t", [{"a": 1}, {"a": 2}, {"a": 3}])
    return db


class TestScalarCoercion:
    def test_comparison_position(self, tdb):
        assert tdb.execute("2 = (SELECT x.a FROM t AS x WHERE x.a = 2)") is True

    def test_arithmetic_position(self, tdb):
        assert tdb.execute("1 + (SELECT x.a FROM t AS x WHERE x.a = 2)") == 3

    def test_select_item_position(self, tdb):
        result = bag_of(
            tdb.execute(
                "SELECT (SELECT x.a FROM t AS x WHERE x.a = 1) AS one FROM [0] AS z"
            )
        )
        assert result[0]["one"] == 1

    def test_empty_is_null(self, tdb):
        assert (
            tdb.execute("(SELECT x.a FROM t AS x WHERE x.a > 99) IS NULL") is True
        )

    def test_multi_row_permissive_missing(self, tdb):
        assert tdb.execute("(SELECT x.a FROM t AS x) IS MISSING") is True

    def test_multi_row_strict_errors(self, tdb):
        with pytest.raises(EvaluationError):
            tdb.execute("1 + (SELECT x.a FROM t AS x)", typing_mode="strict")

    def test_multi_column_row_is_type_error(self, tdb):
        assert (
            tdb.execute(
                "(SELECT x.a, x.a AS b FROM t AS x WHERE x.a = 1) IS MISSING"
            )
            is True
        )

    def test_no_coercion_in_core_mode(self, tdb):
        # In Core mode the subquery stays a collection of tuples, so the
        # comparison is number-vs-bag — a wrongly-typed input to ``=``,
        # which is MISSING in permissive mode (Section IV-B rule 2).
        assert (
            tdb.execute(
                "(2 = (SELECT x.a FROM t AS x WHERE x.a = 2)) IS MISSING",
                sql_compat=False,
            )
            is True
        )


class TestCollectionCoercion:
    def test_in_position(self, tdb):
        assert tdb.execute("2 IN (SELECT x.a FROM t AS x)") is True
        assert tdb.execute("9 IN (SELECT x.a FROM t AS x)") is False

    def test_aggregate_argument_position(self, tdb):
        # Listing 18's pattern: plain SELECT inside COLL_AVG.
        assert tdb.execute("COLL_AVG(SELECT x.a FROM t AS x)") == 2.0

    def test_select_value_not_coerced_in_aggregate(self, tdb):
        assert tdb.execute("COLL_SUM(SELECT VALUE x.a FROM t AS x)") == 6


class TestComposability:
    def test_subquery_in_from(self, tdb):
        result = bag_of(
            tdb.execute(
                "SELECT VALUE v FROM (SELECT VALUE x.a * 10 FROM t AS x) AS v"
            )
        )
        assert sorted(result) == [10, 20, 30]

    def test_subquery_in_where(self, tdb):
        result = bag_of(
            tdb.execute(
                "SELECT VALUE x.a FROM t AS x "
                "WHERE x.a = (SELECT y.a FROM t AS y WHERE y.a = 3)"
            )
        )
        assert result == [3]

    def test_correlated_subquery(self, db):
        db.set("emps", [{"id": 1}, {"id": 2}])
        db.set("orders", [{"emp": 1}, {"emp": 1}, {"emp": 2}])
        result = bag_of(
            db.execute(
                "SELECT e.id AS id, "
                "(SELECT VALUE COUNT(*) FROM orders AS o WHERE o.emp = e.id) AS n "
                "FROM emps AS e"
            )
        )
        counts = {row["id"]: bag_of(row["n"])[0] for row in result}
        assert counts == {1: 2, 2: 1}

    def test_subquery_inside_struct_constructor(self, tdb):
        result = tdb.execute("{'all': (SELECT VALUE x.a FROM t AS x)}")
        assert sorted(bag_of(result["all"])) == [1, 2, 3]

    def test_subquery_inside_array_constructor(self, tdb):
        result = tdb.execute("[(SELECT VALUE x.a FROM t AS x WHERE x.a = 1)]")
        assert isinstance(result[0], Bag)

    def test_exists_subquery(self, tdb):
        assert tdb.execute("EXISTS (SELECT VALUE x FROM t AS x WHERE x.a = 3)") is True
        assert (
            tdb.execute("EXISTS (SELECT VALUE x FROM t AS x WHERE x.a = 99)") is False
        )

    def test_deeply_nested_subqueries(self, tdb):
        result = tdb.execute(
            "COLL_SUM(SELECT VALUE COLL_SUM(SELECT VALUE y FROM [x.a, x.a] AS y) "
            "FROM t AS x)"
        )
        assert result == 12

    def test_outer_variable_visible_in_nested_query(self, db):
        db.set("t", [{"xs": [1, 2], "base": 10}])
        result = bag_of(
            db.execute(
                "SELECT VALUE (SELECT VALUE x + r.base FROM r.xs AS x) FROM t AS r"
            )
        )
        assert sorted(bag_of(result[0])) == [11, 12]


class TestPivotQueries:
    def test_pivot_returns_tuple(self, db):
        db.set("prices", [{"s": "a", "p": 1}, {"s": "b", "p": 2}])
        result = db.execute("PIVOT r.p AT r.s FROM prices AS r")
        assert result.to_dict() == {"a": 1, "b": 2}

    def test_pivot_skips_non_string_names_permissive(self, db):
        db.set("prices", [{"s": "a", "p": 1}, {"s": 7, "p": 2}])
        result = db.execute("PIVOT r.p AT r.s FROM prices AS r")
        assert result.keys() == ["a"]

    def test_pivot_strict_rejects_non_string_names(self, db):
        from repro.errors import TypeCheckError

        db.set("prices", [{"s": 7, "p": 2}])
        with pytest.raises(TypeCheckError):
            db.execute("PIVOT r.p AT r.s FROM prices AS r", typing_mode="strict")

    def test_pivot_skips_missing_values(self, db):
        db.set("prices", [{"s": "a"}, {"s": "b", "p": 2}])
        result = db.execute("PIVOT r.p AT r.s FROM prices AS r")
        assert result.keys() == ["b"]

    def test_pivot_with_where(self, db):
        db.set("prices", [{"s": "a", "p": 1}, {"s": "b", "p": 2}])
        result = db.execute("PIVOT r.p AT r.s FROM prices AS r WHERE r.p > 1")
        assert result.to_dict() == {"b": 2}

    def test_pivot_duplicate_names_kept(self, db):
        db.set("prices", [{"s": "a", "p": 1}, {"s": "a", "p": 2}])
        result = db.execute("PIVOT r.p AT r.s FROM prices AS r")
        assert result.get_all("a") == [1, 2]


class TestUnpivot:
    def test_unpivot_binds_name_and_value(self, db):
        result = bag_of(
            db.execute("SELECT VALUE [a, v] FROM UNPIVOT {'x': 1, 'y': 2} AS v AT a")
        )
        assert sorted(result) == [["x", 1], ["y", 2]]

    def test_unpivot_non_tuple_permissive(self, db):
        result = bag_of(db.execute("SELECT VALUE [a, v] FROM UNPIVOT 5 AS v AT a"))
        assert result == [["_1", 5]]

    def test_unpivot_missing_is_empty(self, db):
        db.set("t", [{"id": 1}])
        result = bag_of(
            db.execute(
                "SELECT VALUE v FROM t AS r, UNPIVOT r.nothing AS v AT a"
            )
        )
        assert result == []

    def test_unpivot_strict_rejects_non_tuple(self, db):
        from repro.errors import TypeCheckError

        with pytest.raises(TypeCheckError):
            db.execute("SELECT VALUE v FROM UNPIVOT [1] AS v AT a", typing_mode="strict")
