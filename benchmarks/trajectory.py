"""Benchmark-trajectory regression gate.

The pytest-benchmark suites in this directory measure *claims* (hash
join beats nested loop, compat dispatch is cheap).  This harness
measures *trajectory*: a small, fast, self-contained set of headline
workloads whose medians are snapshotted per PR into the repo as
``BENCH_PR<N>.json``, so a later PR can ask "did I make the engine
slower?" without re-deriving a baseline.

Usage::

    PYTHONPATH=src python benchmarks/trajectory.py --pr 4
        # run the workloads, write BENCH_PR4.json next to this script

    PYTHONPATH=src python benchmarks/trajectory.py --check
        # run the workloads, compare against the latest committed
        # snapshot; exit 1 on any >25% median regression

    python benchmarks/trajectory.py --check \
        --candidate new.json --baseline old.json
        # pure file-vs-file comparison — no engine import, no timing

Snapshots record the median and mean of ``--rounds`` (default 5) runs
per workload.  The gate is intentionally coarse (25% on a median) so
that CI noise does not page anyone; it is wired as an allowed-to-fail
job whose artifact is the candidate snapshot.
"""

from __future__ import annotations

import argparse
import json
import platform
import re
import statistics
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

BENCH_DIR = Path(__file__).resolve().parent
SNAPSHOT_PATTERN = re.compile(r"^BENCH_PR(\d+)\.json$")
#: Fail the gate when a workload's median grows by more than this.
REGRESSION_THRESHOLD = 0.25


# ---------------------------------------------------------------------------
# Workloads
# ---------------------------------------------------------------------------


def _join_tables(n: int):
    n_users = max(n // 10, 10)
    users = [{"uid": i, "name": f"user-{i}"} for i in range(n_users)]
    orders = [
        {"oid": i, "user_id": (i * 7) % n_users, "total": (i * 13) % 500}
        for i in range(n)
    ]
    return users, orders


JOIN_QUERY = (
    "SELECT u.uid AS uid, o.oid AS oid, o.total AS total "
    "FROM users AS u JOIN orders AS o ON o.user_id = u.uid "
    "WHERE o.total >= 10"
)

GROUP_QUERY = (
    "SELECT o.user_id AS uid, COUNT(*) AS n, SUM(o.total) AS spend "
    "FROM orders AS o GROUP BY o.user_id"
)

UNNEST_QUERY = (
    "SELECT r.name AS name, t AS tag "
    "FROM readings AS r, r.tags AS t WHERE t >= 5"
)


def build_workloads() -> List[Tuple[str, Callable[[], object]]]:
    """``(name, thunk)`` pairs; each thunk is one timed run.

    Databases are built (and compile caches warmed) *outside* the
    timed thunk so the medians track execution, the quantity the
    planner and evaluator PRs actually move.
    """
    from repro import Database

    workloads: List[Tuple[str, Callable[[], object]]] = []

    users, orders = _join_tables(2_000)
    hashed = Database(optimize=True)
    hashed.set("users", users)
    hashed.set("orders", orders)
    hashed.execute(JOIN_QUERY)
    workloads.append(("e13_hash_join_n2000", lambda: hashed.execute(JOIN_QUERY)))

    small_users, small_orders = _join_tables(300)
    nested = Database(optimize=False)
    nested.set("users", small_users)
    nested.set("orders", small_orders)
    nested.execute(JOIN_QUERY)
    workloads.append(
        ("e13_nested_loop_n300", lambda: nested.execute(JOIN_QUERY))
    )

    grouping = Database()
    grouping.set("orders", orders)
    grouping.execute(GROUP_QUERY)
    workloads.append(("e07_group_by_n2000", lambda: grouping.execute(GROUP_QUERY)))

    readings = [
        {"name": f"sensor-{i}", "tags": [(i * j) % 11 for j in range(8)]}
        for i in range(500)
    ]
    unnesting = Database()
    unnesting.set("readings", readings)
    unnesting.execute(UNNEST_QUERY)
    workloads.append(
        ("e03_unnest_n500", lambda: unnesting.execute(UNNEST_QUERY))
    )

    # Streamed top-K (E15): ORDER BY ... LIMIT on the pipelined engine
    # exercises the generator operators and the bounded heap consumer.
    big = [{"x": (i * 2654435761) % 1_000_000, "y": i % 997} for i in range(20_000)]
    topk = Database()
    topk.set("big", big)
    topk_query = (
        "SELECT b.x AS x, b.y AS y FROM big AS b "
        "ORDER BY b.y DESC, b.x LIMIT 10"
    )
    topk.execute(topk_query)
    workloads.append(("e15_topk_n20000", lambda: topk.execute(topk_query)))

    # Batch GROUP BY at scale (E7): the chunk-vectorized fold path over
    # 100k rows — the headline serial-batch workload of the PR-6
    # executor (docs/PLANNER.md "Batch execution").
    big_users, big_orders = _join_tables(100_000)
    batch_group = Database()
    batch_group.set("orders", big_orders)
    batch_group.execute(GROUP_QUERY)
    workloads.append(
        ("e07_group_by_n100k", lambda: batch_group.execute(GROUP_QUERY))
    )

    # Morsel-parallel hash join at scale (E16): the fork-based fan-out
    # at parallel=2.  On a single-core host this tracks the fixed cost
    # of the parallel machinery (fork + result pickling), not a
    # speedup; the gate keeps that overhead from silently growing.
    par_join = Database(parallel=2)
    par_join.set("users", big_users)
    par_join.set("orders", big_orders)
    par_join.execute(JOIN_QUERY)
    workloads.append(
        ("e16_parallel_join_n100k", lambda: par_join.execute(JOIN_QUERY))
    )

    # Query-store steady state (PR 8): the default-on store folds one
    # observation and re-exports its gauges per execution, with the
    # feedback-sampled trace burned during warm-up.  Tracks the
    # bookkeeping the whole fleet of workloads now silently pays
    # (benchmarks/bench_querystore_overhead.py pins the A/B delta).
    stored = Database()
    stored.set("users", users)
    stored.set("orders", orders)
    stored.execute(JOIN_QUERY)
    stored.execute(JOIN_QUERY)
    workloads.append(
        ("e17_query_store_steady_n2000", lambda: stored.execute(JOIN_QUERY))
    )

    # Decorrelated scalar aggregate (E18 / PR 9): the semantic rewrite
    # registry (docs/REWRITER.md) turns the correlated per-customer
    # SUM subquery into one grouped LEFT join; tracks the rewritten
    # plan plus the registry's own matching overhead on a warm cache.
    dec_users = [{"id": i, "name": f"u{i}"} for i in range(1_000)]
    dec_orders = [
        {"cust": (i * 7) % 1_100, "amt": i % 100} for i in range(10_000)
    ]
    decorrelate = Database()
    decorrelate.set("customers", dec_users)
    decorrelate.set("orders", dec_orders)
    decorrelate_query = (
        "SELECT c.id AS id, (SELECT SUM(o.amt) FROM orders AS o "
        "WHERE o.cust = c.id) AS total FROM customers AS c"
    )
    decorrelate.execute(decorrelate_query)
    workloads.append(
        (
            "e18_decorrelate_n10k",
            lambda: decorrelate.execute(decorrelate_query),
        )
    )

    # Statically-empty predicate pruning (E19 / PR 10): abstract
    # interpretation proves the contradictory WHERE never TRUE and the
    # planner collapses the 100k-row scan to a zero-row EmptyOp
    # (docs/PLANNER.md "prune-empty"); tracks the whole
    # fold/prove/prune pipeline on a warm compile cache, where the
    # work left should be near-constant regardless of data size.
    pruned = Database()
    pruned.set("orders", big_orders)
    pruned_query = (
        "SELECT VALUE o.oid FROM orders AS o "
        "WHERE o.total > 500 AND o.total < 100"
    )
    pruned.execute(pruned_query)
    workloads.append(
        ("e19_prune_empty_n100k", lambda: pruned.execute(pruned_query))
    )

    # Scan + predicate on the warm compile cache: big enough (~10ms)
    # that the 25% gate measures the engine, not scheduler jitter.
    cached = Database()
    cached.set("orders", orders)
    filter_query = "SELECT VALUE o.oid FROM orders AS o WHERE o.total > 250"
    cached.execute(filter_query)
    workloads.append(
        ("compile_cache_hit_n2000", lambda: cached.execute(filter_query))
    )

    return workloads


def run_workloads(rounds: int = 5) -> Dict[str, object]:
    """Time every workload ``rounds`` times; return the snapshot dict."""
    groups: Dict[str, Dict[str, object]] = {}
    for name, thunk in build_workloads():
        samples: List[float] = []
        for _ in range(rounds):
            started = time.perf_counter()
            thunk()
            samples.append(time.perf_counter() - started)
        groups[name] = {
            "median_s": round(statistics.median(samples), 6),
            "mean_s": round(statistics.fmean(samples), 6),
            "rounds": rounds,
        }
    return {
        "schema": "repro-bench-trajectory/1",
        "python": platform.python_version(),
        "groups": groups,
    }


# ---------------------------------------------------------------------------
# Snapshot comparison
# ---------------------------------------------------------------------------


def latest_snapshot(directory: Path = BENCH_DIR) -> Optional[Path]:
    """The committed ``BENCH_PR<N>.json`` with the highest N, if any."""
    best: Optional[Tuple[int, Path]] = None
    for path in directory.iterdir():
        match = SNAPSHOT_PATTERN.match(path.name)
        if match and (best is None or int(match.group(1)) > best[0]):
            best = (int(match.group(1)), path)
    return best[1] if best else None


def compare(
    candidate: Dict[str, object],
    baseline: Dict[str, object],
    threshold: float = REGRESSION_THRESHOLD,
) -> Tuple[List[str], List[str]]:
    """``(regressions, report_lines)`` for candidate vs baseline.

    Workloads present on only one side are reported but never fail the
    gate — they are a renamed or newly added workload, not a slowdown.
    """
    regressions: List[str] = []
    lines: List[str] = []
    cand_groups: Dict[str, dict] = candidate.get("groups", {})  # type: ignore
    base_groups: Dict[str, dict] = baseline.get("groups", {})  # type: ignore
    for name in sorted(set(cand_groups) | set(base_groups)):
        if name not in base_groups:
            lines.append(f"  new      {name}: no baseline")
            continue
        if name not in cand_groups:
            lines.append(f"  dropped  {name}: not in candidate")
            continue
        base = float(base_groups[name]["median_s"])
        cand = float(cand_groups[name]["median_s"])
        delta = (cand - base) / base if base else 0.0
        verdict = "ok"
        if delta > threshold:
            verdict = "REGRESSED"
            regressions.append(
                f"{name}: median {base * 1e3:.2f}ms -> {cand * 1e3:.2f}ms "
                f"(+{delta * 100:.0f}%, gate {threshold * 100:.0f}%)"
            )
        elif delta < -threshold:
            verdict = "improved"
        lines.append(
            f"  {verdict:<10}{name}: {base * 1e3:8.2f}ms -> "
            f"{cand * 1e3:8.2f}ms ({delta * +100:+.0f}%)"
        )
    return regressions, lines


def _load(path: Path) -> Dict[str, object]:
    with open(path) as handle:
        return json.load(handle)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Run the trajectory workloads and snapshot/compare medians."
    )
    parser.add_argument(
        "--pr", type=int, help="write the snapshot as BENCH_PR<N>.json"
    )
    parser.add_argument(
        "--out", metavar="PATH", help="write the snapshot to an explicit path"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against the baseline; exit 1 on any regression",
    )
    parser.add_argument(
        "--candidate",
        metavar="PATH",
        help="with --check: compare this snapshot file instead of running",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help="with --check: baseline file (default: latest BENCH_PR<N>.json)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=REGRESSION_THRESHOLD,
        help="median-regression gate as a fraction (default 0.25)",
    )
    parser.add_argument(
        "--rounds", type=int, default=5, help="timed runs per workload"
    )
    args = parser.parse_args(argv)

    if args.candidate:
        candidate = _load(Path(args.candidate))
    else:
        candidate = run_workloads(rounds=args.rounds)

    out_path: Optional[Path] = None
    if args.out:
        out_path = Path(args.out)
    elif args.pr is not None:
        out_path = BENCH_DIR / f"BENCH_PR{args.pr}.json"
    if out_path is not None:
        with open(out_path, "w") as handle:
            json.dump(candidate, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {out_path}")

    if not args.check:
        groups: Dict[str, dict] = candidate["groups"]  # type: ignore
        for name, stats in sorted(groups.items()):
            print(f"  {name}: median {stats['median_s'] * 1e3:.2f}ms")
        return 0

    baseline_path = (
        Path(args.baseline) if args.baseline else latest_snapshot()
    )
    if baseline_path is None:
        print("no committed BENCH_PR<N>.json baseline; nothing to gate")
        return 0
    baseline = _load(baseline_path)
    print(f"baseline: {baseline_path.name}")
    regressions, lines = compare(candidate, baseline, threshold=args.threshold)
    print("\n".join(lines))
    if regressions:
        print(f"\n{len(regressions)} regression(s):")
        for regression in regressions:
            print(f"  {regression}")
        return 1
    print("\ntrajectory gate: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
