"""Property: compiled closures agree with the reference interpreter.

For any generated expression and environment,
``evaluator.compiled(expr)(env)`` must produce exactly what
``evaluator.eval_expr(expr, env)`` produces — same value, or the same
exception type.  This is the invariant that lets the hot paths use
closures without a second source of semantic truth.
"""

from hypothesis import given, settings, strategies as st

from repro.catalog.catalog import Catalog
from repro.config import EvalConfig
from repro.core.environment import Environment
from repro.core.evaluator import Evaluator
from repro.datamodel.equality import deep_equals
from repro.datamodel.values import MISSING
from repro.errors import SQLPPError
from repro.syntax import ast

identifiers = st.sampled_from(["x", "y", "r", "zz"])

literals = st.builds(
    ast.Literal,
    st.one_of(
        st.none(),
        st.just(MISSING),
        st.booleans(),
        st.integers(-100, 100),
        st.floats(allow_nan=False, allow_infinity=False, width=16),
        st.text(max_size=6),
    ),
)


def expressions(depth=3):
    base = st.one_of(literals, st.builds(ast.VarRef, identifiers))
    if depth == 0:
        return base
    inner = expressions(depth - 1)
    return st.one_of(
        base,
        st.builds(ast.Path, inner, identifiers),
        st.builds(ast.Index, inner, inner),
        st.builds(
            ast.Binary,
            st.sampled_from(
                ["+", "-", "*", "/", "%", "=", "!=", "<", "<=", ">", ">=",
                 "||", "AND", "OR"]
            ),
            inner,
            inner,
        ),
        st.builds(ast.Unary, st.sampled_from(["-", "+", "NOT"]), inner),
        st.builds(
            ast.IsPredicate,
            inner,
            st.sampled_from(["NULL", "MISSING", "INTEGER", "STRING"]),
            st.booleans(),
        ),
        st.builds(
            ast.Like, inner, inner, st.none(), st.booleans()
        ),
        st.builds(ast.Between, inner, inner, inner, st.booleans()),
        st.builds(ast.InPredicate, inner, inner, st.booleans()),
        st.builds(ast.Exists, inner),
        st.builds(
            ast.FunctionCall,
            st.sampled_from(
                ["LOWER", "UPPER", "ABS", "COALESCE", "COLL_SUM", "TYPEOF",
                 "ARRAY_LENGTH", "IFMISSING"]
            ),
            st.lists(inner, min_size=1, max_size=2),
        ),
        st.builds(ast.ArrayLit, st.lists(inner, max_size=3)),
        st.builds(ast.BagLit, st.lists(inner, max_size=3)),
        st.builds(
            ast.StructLit,
            st.lists(
                st.builds(
                    ast.StructField,
                    st.builds(ast.Literal, st.sampled_from(["a", "b"])),
                    inner,
                ),
                max_size=2,
            ),
        ),
    )


environments = st.fixed_dictionaries(
    {},
    optional={
        "x": st.one_of(st.integers(-5, 5), st.text(max_size=3), st.none()),
        "y": st.one_of(
            st.lists(st.integers(0, 5), max_size=3),
            st.dictionaries(st.sampled_from(["a", "b"]), st.integers(0, 5)),
        ),
        "r": st.dictionaries(
            st.sampled_from(["x", "zz"]), st.integers(0, 9), max_size=2
        ),
    },
)


def run_both(expr, bindings, typing_mode):
    catalog = Catalog()
    catalog.set("zz", [1, 2, 3])
    evaluator = Evaluator(catalog, EvalConfig(typing_mode=typing_mode))
    from repro.datamodel.convert import from_python

    env = Environment({name: from_python(value) for name, value in bindings.items()})

    def attempt(fn):
        try:
            return ("value", fn())
        except SQLPPError as exc:
            return ("error", type(exc).__name__)
        except Exception as exc:  # Unbound and friends
            return ("raise", type(exc).__name__)

    reference = attempt(lambda: evaluator.eval_expr(expr, env))
    compiled = attempt(lambda: evaluator.compiled(expr)(env))
    return reference, compiled


@given(expressions(), environments, st.sampled_from(["permissive", "strict"]))
@settings(max_examples=400, deadline=None)
def test_compiled_matches_interpreter(expr, bindings, typing_mode):
    reference, compiled = run_both(expr, bindings, typing_mode)
    assert reference[0] == compiled[0], (reference, compiled)
    if reference[0] == "value":
        assert deep_equals(reference[1], compiled[1]), (reference, compiled)
    else:
        assert reference[1] == compiled[1]
