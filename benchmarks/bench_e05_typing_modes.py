"""E5 — permissive vs stop-on-error typing (Section IV, relaxation 2).

Shape claims:

* on clean data, the permissive machinery costs little over strict;
* as the dirty-rate grows, permissive mode keeps answering — the result
  covers exactly the healthy rows — while strict mode fails fast (its
  "cost" is constant-ish: it stops at the first offender).
"""

import pytest

from repro import TypeCheckError
from repro.workloads import event_log

from conftest import make_db

SIZE = 5_000
DIRTY_RATES = [0.0, 0.01, 0.1, 0.5]

QUERY = (
    "SELECT e.kind AS kind, AVG(e.latency) AS avg_latency, COUNT(*) AS n "
    "FROM events AS e GROUP BY e.kind"
)


@pytest.mark.benchmark(group="E5-typing-modes")
@pytest.mark.parametrize("rate", DIRTY_RATES)
def test_permissive(benchmark, rate):
    db = make_db(events=event_log(SIZE, dirty_rate=rate, seed=31))
    result = db.execute(QUERY)
    # Healthy data proceeds: every group still reports an average and
    # the row count covers *all* events.
    rows = list(result)
    assert sum(row["n"] for row in rows) == SIZE
    if rate < 1.0:
        assert all(row["avg_latency"] is not None for row in rows)
    benchmark(lambda: db.execute(QUERY))


@pytest.mark.benchmark(group="E5-typing-modes")
def test_strict_on_clean_data(benchmark):
    db = make_db(events=event_log(SIZE, dirty_rate=0.0, seed=31))
    benchmark(lambda: db.execute(QUERY, typing_mode="strict"))


@pytest.mark.benchmark(group="E5-strict-fail-fast")
@pytest.mark.parametrize("rate", [0.01, 0.5])
def test_strict_stops_on_dirty_data(benchmark, rate):
    db = make_db(events=event_log(SIZE, dirty_rate=rate, seed=31))

    def attempt():
        with pytest.raises(TypeCheckError):
            db.execute(QUERY, typing_mode="strict")

    benchmark(attempt)
