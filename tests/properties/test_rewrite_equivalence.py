"""Property test: the semantic rewrite registry preserves semantics.

Per rule, for randomly generated data — rows whose correlation keys
may be NULL, MISSING, int, float, or the wrong type entirely —
evaluation with ``rewrite=True`` must be indistinguishable from
``rewrite=False``, in both typing modes (same result bag, or the same
error class).  These are exactly the hazards each rule's safety
conditions discharge: absent keys, duplicate inner keys, empty groups,
mixed equality categories, int/float key unification.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro import Database, errors
from repro.datamodel.equality import deep_equals
from repro.datamodel.values import Bag

# Keys cover every hazard class: absent (dropped attribute = MISSING),
# NULL, int/float unification, and a cross-category string.
key_strategy = st.one_of(
    st.none(),
    st.integers(0, 3),
    st.sampled_from([0.0, 1.0, 2.5]),
    st.sampled_from(["x", "y"]),
)


def outer_rows():
    return st.lists(
        st.fixed_dictionaries({}, optional={"id": key_strategy}),
        max_size=6,
    )


def inner_rows():
    return st.lists(
        st.fixed_dictionaries(
            {},
            optional={"cust": key_strategy, "amt": st.integers(-5, 5)},
        ),
        max_size=8,
    )


def run_both(db: Database, query: str, typing_mode: str) -> None:
    def outcome(rewrite: bool):
        try:
            return ("value", db.execute(
                query, typing_mode=typing_mode, rewrite=rewrite
            ))
        except errors.SQLPPError as exc:
            return ("error", type(exc).__name__)

    on = outcome(True)
    off = outcome(False)
    assert on[0] == off[0], f"{query!r}: on → {on}, off → {off}"
    if on[0] == "error":
        assert on[1] == off[1]
        return
    left, right = on[1], off[1]
    if isinstance(left, (list, Bag)):
        assert deep_equals(Bag(list(left)), Bag(list(right))), (
            f"rewrite parity violation for {query!r}"
        )
    else:
        assert deep_equals(left, right)


def make_db(customers, orders) -> Database:
    db = Database()
    db.set("customers", customers)
    db.set("orders", orders)
    return db


@given(outer_rows(), inner_rows(), st.sampled_from(["permissive", "strict"]))
@settings(max_examples=60, deadline=None)
def test_r01_exists_semijoin_parity(customers, orders, typing_mode):
    run_both(
        make_db(customers, orders),
        "SELECT VALUE c.id FROM customers AS c WHERE EXISTS "
        "(SELECT VALUE o FROM orders AS o WHERE o.cust = c.id)",
        typing_mode,
    )


@given(outer_rows(), inner_rows(), st.sampled_from(["permissive", "strict"]))
@settings(max_examples=60, deadline=None)
def test_r01_in_subquery_parity(customers, orders, typing_mode):
    run_both(
        make_db(customers, orders),
        "SELECT VALUE c.id FROM customers AS c "
        "WHERE c.id IN (SELECT VALUE o.cust FROM orders AS o)",
        typing_mode,
    )


@given(
    outer_rows(),
    inner_rows(),
    st.sampled_from(["SUM", "COUNT", "AVG", "MIN", "MAX"]),
    st.sampled_from(["permissive", "strict"]),
)
@settings(max_examples=60, deadline=None)
def test_r02_decorrelate_scalar_parity(customers, orders, agg, typing_mode):
    run_both(
        make_db(customers, orders),
        f"SELECT c.id AS id, (SELECT {agg}(o.amt) FROM orders AS o "
        "WHERE o.cust = c.id) AS v FROM customers AS c",
        typing_mode,
    )


@given(
    outer_rows(),
    st.lists(
        st.one_of(
            st.integers(0, 3), st.sampled_from([1.0, "x", True])
        ),
        min_size=3,
        max_size=5,
    ),
    st.sampled_from(["permissive", "strict"]),
)
@settings(max_examples=60, deadline=None)
def test_r03_or_to_in_parity(customers, literals, typing_mode):
    def lit(value):
        if isinstance(value, bool):
            return "TRUE" if value else "FALSE"
        if isinstance(value, str):
            return f"'{value}'"
        return repr(value)

    chain = " OR ".join(f"c.id = {lit(v)}" for v in literals)
    run_both(
        make_db(customers, []),
        f"SELECT VALUE c.id FROM customers AS c WHERE {chain}",
        typing_mode,
    )


@given(outer_rows(), inner_rows(), st.sampled_from(["permissive", "strict"]))
@settings(max_examples=40, deadline=None)
def test_r04_cse_parity(customers, orders, typing_mode):
    run_both(
        make_db(customers, orders),
        "SELECT VALUE [(SELECT VALUE o.amt FROM orders AS o "
        "WHERE o.cust = c.id), (SELECT VALUE o.amt FROM orders AS o "
        "WHERE o.cust = c.id)] FROM customers AS c",
        typing_mode,
    )


@given(outer_rows(), inner_rows(), st.sampled_from(["permissive", "strict"]))
@settings(max_examples=40, deadline=None)
def test_stacked_rules_parity(customers, orders, typing_mode):
    # One query where several rules can fire on the same block.
    run_both(
        make_db(customers, orders),
        "SELECT c.id AS id, (SELECT SUM(o.amt) FROM orders AS o "
        "WHERE o.cust = c.id) AS total FROM customers AS c "
        "WHERE (c.id = 1 OR c.id = 2 OR c.id = 3) AND EXISTS "
        "(SELECT VALUE o FROM orders AS o WHERE o.cust = c.id)",
        typing_mode,
    )
