"""The plan/rewrite structural verifier (docs/ANALYZER.md).

Clean plans must verify with zero violations; deliberately-broken
fixtures — a mutated copy of a real plan per invariant — must each be
caught.  Also pins the three entry points: the ``REPRO_VERIFY_PLANS``
environment gate (off by default, on in the CI sweep), the on-demand
``Database.verify_plan``, and the fact that a violation surfaces as
:class:`PlanVerificationError` (a ``RuntimeError``, *not* an
``SQLPPError``) so parity harnesses cannot swallow it.
"""

from __future__ import annotations

import pytest

from repro import Database, errors
from repro.analysis.verify_plan import (
    PlanVerificationError,
    maybe_verify_block_plan,
    verification_enabled,
    verify_block_plan,
    verify_rewrite,
)
from repro.config import EvalConfig
from repro.core.plan_ops import EmptyOp
from repro.core.planner import BlockPlan, ItemPlan, plan_block
from repro.core.rewriter import rewrite_query
from repro.syntax import ast
from repro.syntax.parser import parse

JOIN_QUERY = (
    "SELECT VALUE [a.k, b.k] FROM xs AS a JOIN ys AS b ON a.k = b.k "
    "WHERE a.v > 1"
)


def _plan(query: str = JOIN_QUERY) -> BlockPlan:
    config = EvalConfig()
    core = rewrite_query(parse(query), config, catalog_names=("xs", "ys"))
    plan = plan_block(
        core.body, config, force=True, catalog_names={"xs", "ys"}
    )
    assert plan is not None
    return plan


class TestCleanPlans:
    def test_join_plan_verifies(self):
        assert verify_block_plan(_plan()) == []

    def test_pruned_plan_verifies(self):
        plan = _plan("SELECT VALUE a FROM xs AS a WHERE a.k > 5 AND a.k < 3")
        assert plan.pruned is not None
        assert verify_block_plan(plan) == []

    def test_not_a_plan_is_one_violation(self):
        assert verify_block_plan(object()) == [
            "not a BlockPlan: object"
        ]


class TestBrokenFixtures:
    """Each fixture breaks exactly one invariant of a real plan."""

    def test_duplicate_operator_in_tree(self):
        plan = _plan()
        join = plan.items[0].op
        join.right = join.left  # one operator, two parents
        violations = verify_block_plan(plan)
        assert any("more than once" in v for v in violations)

    def test_negative_estimate(self):
        plan = _plan()
        plan.items[0].op.est_rows = -1.0
        violations = verify_block_plan(plan)
        assert any("negative row estimate" in v for v in violations)

    def test_model_estimate_above_product(self):
        plan = _plan()
        join = plan.items[0].op
        join.left.est_rows = 2.0
        join.right.est_rows = 3.0
        join.est_rows = 100.0
        join.est_source = "model"
        violations = verify_block_plan(plan)
        assert any("exceeds the product" in v for v in violations)

    def test_feedback_estimate_above_product_allowed(self):
        # A feedback hint is an observed actual: it may exceed the model.
        plan = _plan()
        join = plan.items[0].op
        join.left.est_rows = 2.0
        join.right.est_rows = 3.0
        join.est_rows = 100.0
        join.est_source = "feedback"
        assert verify_block_plan(plan) == []

    def test_filter_referencing_unbound_name(self):
        plan = _plan("SELECT VALUE a FROM xs AS a WHERE a.v > 1")
        scan = plan.items[0].op
        assert scan.filters, "fixture expects a pushed filter"
        rogue = ast.Binary(
            op=">",
            left=ast.Path(base=ast.VarRef(name="ghost"), attr="v"),
            right=ast.Literal(value=1),
        )
        rogue.line, rogue.column = 1, 1
        scan.filters.append(rogue)
        violations = verify_block_plan(plan)
        assert any("unbound names" in v for v in violations)

    def test_filter_without_span(self):
        plan = _plan("SELECT VALUE a FROM xs AS a WHERE a.v > 1")
        scan = plan.items[0].op
        for node in scan.filters[0].walk():
            node.line = None
        violations = verify_block_plan(plan)
        assert any("no source span" in v for v in violations)

    def test_vars_not_matching_item(self):
        plan = _plan("SELECT VALUE a FROM xs AS a WHERE a.v > 1")
        plan.items[0].op.vars = ["somebody_else"]
        violations = verify_block_plan(plan)
        assert any("item variables" in v for v in violations)

    def test_pruned_claim_without_empty_op(self):
        plan = _plan("SELECT VALUE a FROM xs AS a WHERE a.v > 1")
        plan.pruned = "fabricated"
        violations = verify_block_plan(plan)
        assert any("not a single EmptyOp" in v for v in violations)

    def test_pruned_plan_with_residual(self):
        residual = ast.Literal(value=True)
        residual.line, residual.column = 1, 1
        plan = BlockPlan(
            items=[ItemPlan(op=EmptyOp(["a"], "fixture"))],
            residual_where=residual,
            rewrites=[],
            pruned="fixture",
        )
        violations = verify_block_plan(plan)
        assert any("residual WHERE" in v for v in violations)


class TestRewriteVerification:
    def test_identity_with_firings_is_a_violation(self):
        core = rewrite_query(
            parse("SELECT VALUE a FROM xs AS a"),
            EvalConfig(),
            catalog_names=("xs",),
        )

        class Fired:
            code = "SQLPPR99"
            line = 1

        violations = verify_rewrite(core, core, [Fired()], ["xs"])
        assert any("returned the input tree" in v for v in violations)

    def test_unstamped_synthesized_node(self):
        config = EvalConfig()
        core = rewrite_query(
            parse("SELECT VALUE a FROM xs AS a WHERE a.k = 1"),
            config,
            catalog_names=("xs",),
        )
        import dataclasses

        bare = ast.VarRef(name="a")  # no span on purpose
        broken = dataclasses.replace(
            core, body=dataclasses.replace(core.body, where=bare)
        )
        violations = verify_rewrite(core, broken, [], ["xs"])
        assert any("without a source span" in v for v in violations)

    def test_binding_regression(self):
        config = EvalConfig()
        core = rewrite_query(
            parse("SELECT VALUE a FROM xs AS a"),
            config,
            catalog_names=("xs",),
        )
        import dataclasses

        rogue = ast.VarRef(name="nowhere")
        rogue.line, rogue.column = 1, 1
        broken = dataclasses.replace(
            core, body=dataclasses.replace(core.body, where=rogue)
        )
        violations = verify_rewrite(core, broken, [], ["xs"])
        assert any("binding error" in v for v in violations)

    def test_firing_without_position(self):
        config = EvalConfig()
        core = rewrite_query(
            parse("SELECT VALUE a FROM xs AS a WHERE a.k = 1"),
            config,
            catalog_names=("xs",),
        )
        import dataclasses

        stamped = ast.Literal(value=True)
        stamped.line, stamped.column = 1, 1
        changed = dataclasses.replace(
            core, body=dataclasses.replace(core.body, where=stamped)
        )

        class Fired:
            code = "SQLPPR99"
            line = None

        violations = verify_rewrite(core, changed, [Fired()], ["xs"])
        assert any("records no source position" in v for v in violations)


class TestEntryPoints:
    def test_env_gate_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_VERIFY_PLANS", raising=False)
        assert not verification_enabled()
        monkeypatch.setenv("REPRO_VERIFY_PLANS", "0")
        assert not verification_enabled()
        monkeypatch.setenv("REPRO_VERIFY_PLANS", "1")
        assert verification_enabled()

    def test_maybe_verify_raises_non_sqlpp_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY_PLANS", "1")
        plan = _plan()
        plan.items[0].op.est_rows = -5.0
        with pytest.raises(PlanVerificationError) as caught:
            maybe_verify_block_plan(plan)
        assert not isinstance(caught.value, errors.SQLPPError)
        assert caught.value.violations

    def test_maybe_verify_noop_when_disabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_VERIFY_PLANS", raising=False)
        plan = _plan()
        plan.items[0].op.est_rows = -5.0
        maybe_verify_block_plan(plan)  # must not raise

    def test_database_verify_plan_clean(self):
        db = Database()
        db.set("xs", [{"k": 1, "v": 2}])
        db.set("ys", [{"k": 1}])
        assert db.verify_plan(JOIN_QUERY) == []

    def test_database_verify_plan_both_modes(self):
        db = Database()
        db.set("xs", [{"k": 1, "v": 2}])
        for mode in ("permissive", "strict"):
            assert (
                db.verify_plan(
                    "SELECT VALUE a FROM xs AS a WHERE a.k > 5 AND a.k < 3",
                    typing_mode=mode,
                )
                == []
            )

    def test_execution_under_env_flag(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY_PLANS", "1")
        db = Database()
        db.set("xs", [{"k": 1, "v": 2}, {"k": 2, "v": 0}])
        db.set("ys", [{"k": 1}, {"k": 3}])
        assert list(db.execute(JOIN_QUERY)) == [[1, 1]]
