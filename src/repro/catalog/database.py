"""The :class:`Database` facade — the library's main entry point.

Typical use::

    from repro import Database

    db = Database()
    db.set("hr.emp_nest_tuples", [...])          # plain Python data is fine
    result = db.execute('''
        SELECT e.name AS emp_name, p.name AS proj_name
        FROM hr.emp_nest_tuples AS e, e.projects AS p
        WHERE p.name LIKE '%Security%'
    ''')

``execute`` returns SQL++ model values (bags/arrays/structs);
``execute_python`` returns plain Python data.  The two language dials —
typing mode and the SQL-compatibility flag (paper, Sections I and IV) —
can be set per database or overridden per query.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from time import perf_counter
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.config import EvalConfig
from repro.core.environment import Environment
from repro.core.evaluator import Evaluator
from repro.core import rewrite_rules
from repro.core.rewriter import rewrite_query
from repro.catalog.catalog import Catalog
from repro.datamodel.convert import to_python
from repro.datamodel.values import MISSING, Bag, is_collection
from repro.errors import ResourceExhausted, SQLPPError
from repro.observability import (
    ExecTracer,
    MetricsRegistry,
    QueryMetrics,
    QueryStore,
    TraceContext,
    query_fingerprint,
)
from repro.observability.query_store import (
    plan_hash,
    plan_max_qerror,
    record_plan_feedback,
)
from repro.syntax import ast
from repro.syntax.parser import parse
from repro.syntax.printer import print_ast


class Database:
    """A SQL++ database: a catalog of named values plus query execution."""

    #: Bound on the per-database compiled-query (parse+rewrite) cache.
    COMPILE_CACHE_SIZE = 256

    #: Bound on the per-database memoized-evaluator cache (one
    #: evaluator per distinct effective config).
    EVALUATOR_CACHE_SIZE = 8

    def __init__(
        self,
        typing_mode: str = "permissive",
        sql_compat: bool = True,
        optimize: bool = True,
        timeout_s: Optional[float] = None,
        max_rows: Optional[int] = None,
        max_recursion: Optional[int] = None,
        batch: bool = True,
        parallel: int = 0,
        rewrite: bool = True,
        metrics_sinks: Optional[List[Any]] = None,
        query_store: Any = True,
    ):
        from repro.catalog.statistics import StatsProvider

        self.catalog = Catalog()
        self._config = EvalConfig(
            typing_mode=typing_mode,
            sql_compat=sql_compat,
            optimize=optimize,
            timeout_s=timeout_s,
            max_rows=max_rows,
            max_recursion=max_recursion,
            batch=batch,
            parallel=parallel,
            rewrite=rewrite,
        )
        #: Sampled collection statistics feeding the planner's
        #: cost-based join ordering; cached per catalog data version.
        self._stats = StatsProvider(self.catalog)
        # Memoized evaluators, keyed by effective EvalConfig (frozen,
        # hashable).  Re-running a query through the same config reuses
        # the evaluator's compiled-closure and physical-plan caches —
        # the compile cache returns the same AST object, so the
        # id()-keyed caches hit.  ``rebind`` resets per-execution state.
        self._evaluators: "OrderedDict[EvalConfig, Evaluator]" = OrderedDict()
        #: Per-database query metrics: monotonic counters, per-query
        #: records, pluggable sinks (docs/OBSERVABILITY.md).
        self.metrics = MetricsRegistry(sinks=metrics_sinks)
        self._schemas: Dict[str, Any] = {}
        self._schema_version = 0
        # LRU parse+rewrite cache: repeated query texts (benchmark
        # loops, the compat-kit runner, REPL re-runs) skip lexing,
        # parsing and sugar rewriting.  Keyed by query text, both
        # language dials and the catalog/schema state the rewriter
        # consults (name set for dotted-name resolution, schema
        # attributes for disambiguation).
        # Entries are ``(core, pre_rewrite_core, rewrites_fired)``; the
        # key includes the semantic-rewrite gate and registry version.
        self._compile_cache: (
            "OrderedDict[Tuple, Tuple[ast.Query, ast.Query, Tuple]]"
        ) = OrderedDict()
        #: The query store (docs/OBSERVABILITY.md): ``True`` keeps an
        #: in-memory store, a string persists to that JSON-lines path,
        #: ``False``/``None`` disables workload history and the
        #: cardinality feedback loop entirely.
        if isinstance(query_store, QueryStore):
            self._query_store: Optional[QueryStore] = query_store
        elif isinstance(query_store, str):
            self._query_store = QueryStore(path=query_store)
        elif query_store:
            self._query_store = QueryStore()
        else:
            self._query_store = None
        # Fingerprint / plan-hash memos, keyed by object identity with
        # the keyed object kept alive in the entry (id() reuse safety).
        self._fingerprints: "OrderedDict[int, Tuple[ast.Query, str]]" = (
            OrderedDict()
        )
        self._plan_hashes: Dict[int, Tuple[Any, str]] = {}

    # ------------------------------------------------------------------
    # Named values
    # ------------------------------------------------------------------

    def set(self, name: str, value: Any) -> None:
        """Create or replace a named value.

        When a schema is registered for ``name``, the value is validated
        against it first (schema is *optional*, never required — paper
        tenet 3).
        """
        from repro.datamodel.convert import from_python

        model_value = from_python(value)
        schema = self._schemas.get(name)
        if schema is not None:
            from repro.schema.validate import validate

            validate(model_value, schema, path=name)
        self.catalog.set_model(name, model_value)

    def set_lazy(self, name: str, factory: Any) -> None:
        """Create or replace a named value backed by a generator factory.

        ``factory`` is a zero-argument callable returning a fresh
        iterable of Python elements on every call; the named value
        becomes a :class:`~repro.datamodel.values.LazyBag` that streams
        (and converts) elements per traversal instead of materializing
        them.  Combined with the pipelined evaluator this lets bounded
        consumers — ``ORDER BY ... LIMIT k``, plain ``LIMIT``,
        ``EXISTS`` — run in memory proportional to what they keep, not
        to the collection size (docs/PLANNER.md).

        Lazy values skip schema validation (validating would defeat the
        point by traversing everything up front); register a schema only
        on materialized values.
        """
        from repro.datamodel.convert import from_python
        from repro.datamodel.values import LazyBag

        def model_elements():
            return (from_python(element) for element in factory())

        self.catalog.set_model(name, LazyBag(model_elements))

    def get(self, name: str) -> Any:
        return self.catalog.get(name)

    def insert(self, name: str, values: Any) -> None:
        """Append elements to a named collection.

        ``values`` is an iterable of new elements (a list/bag, *not* one
        element).  Creates the named value as a bag when absent.  With a
        registered schema, the updated collection is re-validated and
        the insert is rejected wholesale on a violation.
        """
        from repro.datamodel.convert import from_python
        from repro.datamodel.values import Bag

        new_elements = from_python(list(values))
        if name in self.catalog:
            existing = self.catalog.get(name)
            if isinstance(existing, Bag):
                combined: Any = Bag(existing.to_list() + new_elements)
            elif isinstance(existing, list):
                combined = existing + new_elements
            else:
                from repro.errors import CatalogError

                raise CatalogError(
                    f"cannot insert into non-collection named value {name!r}"
                )
        else:
            combined = Bag(new_elements)
        # Route through set() so schema validation applies atomically.
        self.set(name, combined)

    def drop(self, name: str) -> None:
        self.catalog.drop(name)
        if self._schemas.pop(name, None) is not None:
            self._schema_version += 1

    def names(self) -> List[str]:
        return self.catalog.names()

    # ------------------------------------------------------------------
    # Optional schema
    # ------------------------------------------------------------------

    def set_schema(self, name: str, schema: Any) -> None:
        """Impose a schema on a named value.

        ``schema`` is a :mod:`repro.schema` type (or DDL string parsed by
        :func:`repro.schema.parse_schema`).  An existing value is
        validated immediately: imposing a schema on conforming data must
        not change any query result (the paper's *query stability*
        tenet), so only conforming data is accepted.
        """
        if isinstance(schema, str):
            from repro.schema.ddl import parse_schema

            schema = parse_schema(schema)
        if name in self.catalog:
            from repro.schema.validate import validate

            validate(self.catalog.get(name), schema, path=name)
        self._schemas[name] = schema
        self._schema_version += 1

    def get_schema(self, name: str) -> Optional[Any]:
        return self._schemas.get(name)

    def drop_schema(self, name: str) -> None:
        if self._schemas.pop(name, None) is not None:
            self._schema_version += 1

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------

    def _effective_config(
        self,
        typing_mode: Optional[str],
        sql_compat: Optional[bool],
        optimize: Optional[bool] = None,
        timeout_s: Optional[float] = None,
        max_rows: Optional[int] = None,
        max_recursion: Optional[int] = None,
        batch: Optional[bool] = None,
        parallel: Optional[int] = None,
        rewrite: Optional[bool] = None,
    ) -> EvalConfig:
        """The database config with per-query overrides applied.

        Built with :func:`dataclasses.replace` so fields that are not
        overridden — including the resource limits — are inherited
        rather than silently reset.  ``None`` always means "inherit";
        a database-level limit cannot be *unset* per query.
        """
        overrides: Dict[str, Any] = {}
        if typing_mode is not None:
            overrides["typing_mode"] = typing_mode
        if sql_compat is not None:
            overrides["sql_compat"] = sql_compat
        if optimize is not None:
            overrides["optimize"] = optimize
        if timeout_s is not None:
            overrides["timeout_s"] = timeout_s
        if max_rows is not None:
            overrides["max_rows"] = max_rows
        if max_recursion is not None:
            overrides["max_recursion"] = max_recursion
        if batch is not None:
            overrides["batch"] = batch
        if parallel is not None:
            overrides["parallel"] = parallel
        if rewrite is not None:
            overrides["rewrite"] = rewrite
        if not overrides:
            return self._config
        return dataclasses.replace(self._config, **overrides)

    def _evaluator_for(
        self,
        config: EvalConfig,
        parameters: Optional[Sequence[Any]],
        tracer: Optional[ExecTracer],
    ) -> Evaluator:
        """A memoized evaluator for this config, rebound to the given
        parameters/tracer — or a fresh one when the cached evaluator is
        mid-execution (reentrancy: a lazy-bag factory issuing a query
        while its consumer query runs)."""
        evaluator = self._evaluators.get(config)
        if evaluator is not None and not getattr(evaluator, "_in_use", False):
            self._evaluators.move_to_end(config)
            return evaluator.rebind(parameters=parameters, tracer=tracer)
        evaluator = Evaluator(
            self.catalog,
            config,
            parameters=parameters,
            tracer=tracer,
            stats=self._stats,
        )
        if config not in self._evaluators or not getattr(
            self._evaluators[config], "_in_use", False
        ):
            self._evaluators[config] = evaluator
            if len(self._evaluators) > self.EVALUATOR_CACHE_SIZE:
                self._evaluators.popitem(last=False)
        return evaluator

    def _schema_attrs(self) -> Dict[str, Any]:
        """Attribute sets per schemaful named value, for disambiguation."""
        from repro.schema.types import element_attribute_names

        attrs: Dict[str, Any] = {}
        for name, schema in self._schemas.items():
            names = element_attribute_names(schema)
            if names is not None:
                attrs[name] = names
        return attrs

    def compile(
        self,
        query: str,
        typing_mode: Optional[str] = None,
        sql_compat: Optional[bool] = None,
    ) -> ast.Query:
        """Parse and rewrite a query to its executable Core form.

        Results are memoized in a bounded LRU cache keyed by the query
        text, both language dials, and the catalog/schema state the
        rewriter consults, so repeated queries (benchmark loops, the
        compat-kit runner, REPL re-runs) skip lexing, parsing and sugar
        rewriting.  Evaluation never mutates the AST, so sharing the
        compiled tree across executions is safe — and lets the
        evaluator-side plan/closure caches stay warm per query object.
        """
        return self._compile_profiled(query, typing_mode, sql_compat)[0]

    def _rewrite_catalog_types(self) -> Dict[str, Any]:
        """Abstract catalog types for the rewrite registry's typeflow
        safety checks, from *registered* schemas only: values are
        validated on ``set``, so a declared non-optional attribute is
        genuinely never MISSING.  Sampled shapes are excluded — they are
        softened to open shapes anyway and could never prove presence.
        """
        if not self._schemas:
            return {}
        from repro.analysis.lattice import from_schema

        return {
            name: from_schema(schema)
            for name, schema in self._schemas.items()
        }

    def _compile_profiled(
        self,
        query: str,
        typing_mode: Optional[str] = None,
        sql_compat: Optional[bool] = None,
        metrics: Optional[QueryMetrics] = None,
        trace: Optional[TraceContext] = None,
        optimize: Optional[bool] = None,
        rewrite: Optional[bool] = None,
    ) -> Tuple[ast.Query, ast.Query, Tuple[Any, ...], bool]:
        """Compile with cache accounting:
        ``(core, pre_rewrite_core, rewrites_fired, cache_hit)``.

        ``core`` is what executes (sugar-lowered, then semantically
        rewritten by :mod:`repro.core.rewrite_rules` when the registry
        is enabled); ``pre_rewrite_core`` is the sugar-lowered query
        *before* semantic rewrites — the query store fingerprints that
        one, so workload history and cardinality feedback survive
        registry upgrades and per-query ``rewrite=False``.

        The cache key includes the effective registry gate and
        ``rewrite_rules.REGISTRY_VERSION`` (read dynamically), so a
        registry upgrade invalidates cached rewritten queries exactly
        once, mirroring the stats provider's ``feedback_version``.

        When a :class:`QueryMetrics` record is supplied, its parse and
        rewrite phase timings and fired-rewrite codes are filled in and
        the per-rule ``rewrites_fired:*`` counters bumped; the
        ``compile_cache_hits``/``compile_cache_misses`` counters are
        updated either way.  With a :class:`TraceContext`, a cache miss
        additionally records ``parse`` and ``rewrite`` phase spans.
        """
        config = self._effective_config(
            typing_mode, sql_compat, optimize=optimize, rewrite=rewrite
        )
        rewrite_on = config.rewrite and config.optimize
        key = (
            query,
            config.typing_mode,
            config.sql_compat,
            self.catalog.version,
            self._schema_version,
            rewrite_on,
            rewrite_rules.REGISTRY_VERSION if rewrite_on else 0,
            # Constant folding only runs under optimize, so the dial
            # changes the cached Core tree, not just the plan.
            config.optimize,
        )
        cached = self._compile_cache.get(key)
        if cached is not None:
            self._compile_cache.move_to_end(key)
            self.metrics.increment("compile_cache_hits")
            core, pre_core, fired = cached
            if metrics is not None:
                metrics.cache_hit = True
                self._record_rewrites(metrics, fired)
            return core, pre_core, fired, True
        self.metrics.increment("compile_cache_misses")
        started = perf_counter()
        parsed = parse(query)
        parsed_at = perf_counter()
        pre_core = rewrite_query(
            parsed,
            config,
            catalog_names=self.catalog.names(),
            schema_attrs=self._schema_attrs(),
        )
        fired: Tuple[Any, ...] = ()
        core = pre_core
        if rewrite_on:
            core, fired = rewrite_rules.apply_rules(
                pre_core, config, catalog_types=self._rewrite_catalog_types()
            )
            from repro.analysis.verify_plan import maybe_verify_rewrite

            maybe_verify_rewrite(
                pre_core, core, fired, catalog_names=self.catalog.names()
            )
        if config.optimize:
            # Constant folding executes the real runtime operators, so
            # the folded tree is observationally identical (a raising
            # subexpression stays unfolded); ``pre_core`` stays unfolded
            # so query-store fingerprints are unaffected.
            from repro.analysis.absint import fold_query

            core, _folds = fold_query(core, config)
        rewritten_at = perf_counter()
        if metrics is not None:
            metrics.parse_s = parsed_at - started
            metrics.rewrite_s = rewritten_at - parsed_at
            self._record_rewrites(metrics, fired)
        if trace is not None:
            trace.event("parse", "phase", started, parsed_at - started)
            trace.event("rewrite", "phase", parsed_at, rewritten_at - parsed_at)
        self._compile_cache[key] = (core, pre_core, fired)
        if len(self._compile_cache) > self.COMPILE_CACHE_SIZE:
            self._compile_cache.popitem(last=False)
        return core, pre_core, fired, False

    def _record_rewrites(
        self, metrics: QueryMetrics, fired: Tuple[Any, ...]
    ) -> None:
        """Fold one execution's fired rewrites into its metrics record
        and the per-rule registry counters (Prometheus
        ``repro_rewrites_fired_total{rule=...}``)."""
        if not fired:
            return
        metrics.rewrites = [result.code for result in fired]
        for result in fired:
            self.metrics.increment(f"rewrites_fired:{result.code}")

    def execute(
        self,
        query: str,
        parameters: Optional[Sequence[Any]] = None,
        typing_mode: Optional[str] = None,
        sql_compat: Optional[bool] = None,
        missing_as_null: bool = False,
        optimize: Optional[bool] = None,
        timeout_s: Optional[float] = None,
        max_rows: Optional[int] = None,
        max_recursion: Optional[int] = None,
        batch: Optional[bool] = None,
        parallel: Optional[int] = None,
        rewrite: Optional[bool] = None,
        tracer: Optional[ExecTracer] = None,
    ) -> Any:
        """Execute a SQL++ query and return the result as model values.

        ``missing_as_null`` converts top-level MISSING elements of the
        result collection to NULL, the way the paper says JDBC/ODBC
        clients see them (Section IV-B).  ``optimize=False`` bypasses
        the physical planner and runs the reference Core semantics
        (docs/PLANNER.md); results are identical either way.
        ``rewrite=False`` disables just the semantic rewrite registry
        (docs/REWRITER.md) while keeping physical planning.
        ``batch=False`` additionally disables the chunk-vectorized
        executor; ``parallel=N`` (N >= 2) lets partitionable scans fan
        out over N morsel workers (docs/PLANNER.md).

        ``timeout_s`` / ``max_rows`` / ``max_recursion`` tighten the
        database-level resource limits for this query; a breached limit
        raises :class:`~repro.errors.ResourceExhausted` instead of
        letting the query run away (docs/OBSERVABILITY.md).

        Every call — successful or not — produces one
        :class:`~repro.observability.QueryMetrics` record in
        ``self.metrics``.
        """
        config = self._effective_config(
            typing_mode,
            sql_compat,
            optimize,
            timeout_s,
            max_rows,
            max_recursion,
            batch,
            parallel,
            rewrite,
        )
        metrics = QueryMetrics(query=query)
        trace = tracer.trace if tracer is not None else None
        root = (
            trace.begin("query", category="query")
            if trace is not None
            else None
        )
        started = perf_counter()
        evaluator: Optional[Evaluator] = None
        store = self._query_store
        core: Optional[ast.Query] = None
        feedback_tracer: Optional[ExecTracer] = None
        try:
            core, pre_core, __, ___ = self._compile_profiled(
                query,
                typing_mode,
                sql_compat,
                metrics=metrics,
                trace=trace,
                optimize=optimize,
                rewrite=rewrite,
            )
            if store is not None:
                # Fingerprint the *pre*-rewrite Core: workload history
                # and cardinality feedback survive registry upgrades
                # and per-query rewrite toggles (docs/REWRITER.md).
                metrics.fingerprint = self._fingerprint_for(pre_core, config)
                if tracer is None and store.wants_feedback(
                    metrics.fingerprint, self.catalog.data_version
                ):
                    # Sampled feedback run: attach the timing-free
                    # tracer so operators count rows (cardinality
                    # feedback, q-errors) without per-row clocks.
                    feedback_tracer = ExecTracer(timing=False)
                    tracer = feedback_tracer
            evaluator = self._evaluator_for(config, parameters, tracer)
            evaluator._in_use = True
            execute_started = perf_counter()
            execute_span = (
                trace.begin("execute", category="phase")
                if trace is not None
                else None
            )
            try:
                result = evaluator.execute(core, Environment())
            finally:
                evaluator._in_use = False
                if execute_span is not None:
                    trace.end(execute_span)
                metrics.execute_s = perf_counter() - execute_started
            if is_collection(result):
                metrics.rows_returned = len(result)
        except ResourceExhausted as error:
            metrics.status = "resource_exhausted"
            metrics.error = str(error)
            raise
        except SQLPPError as error:
            metrics.status = "error"
            metrics.error = str(error)
            raise
        finally:
            if evaluator is not None:
                metrics.plan_s = evaluator.plan_time_s
                metrics.streamed = evaluator.streamed
                metrics.batched = evaluator.batched
                metrics.parallel_workers = evaluator.parallel_workers
            metrics.total_s = perf_counter() - started
            if store is not None and metrics.fingerprint is not None:
                self._store_observe(
                    store, metrics, core, evaluator, tracer, feedback_tracer
                )
            if root is not None:
                trace.end(root, {"status": metrics.status})
            self.metrics.record(metrics)
        if missing_as_null:
            result = _missing_to_null(result)
        return result

    # ------------------------------------------------------------------
    # Query store integration
    # ------------------------------------------------------------------

    def query_store(self) -> Optional[QueryStore]:
        """The database's :class:`~repro.observability.QueryStore`
        (None when constructed with ``query_store=False``)."""
        return self._query_store

    def _fingerprint_for(self, core: ast.Query, config: EvalConfig) -> str:
        """Memoized workload fingerprint for one compiled query object
        (the compile cache already keys on text + dials + catalog
        version, so object identity is a sound memo key)."""
        key = id(core)
        entry = self._fingerprints.get(key)
        if entry is not None and entry[0] is core:
            self._fingerprints.move_to_end(key)
            return entry[1]
        fingerprint = query_fingerprint(
            core, config.typing_mode, config.sql_compat, self.catalog.version
        )
        self._fingerprints[key] = (core, fingerprint)
        if len(self._fingerprints) > self.COMPILE_CACHE_SIZE:
            self._fingerprints.popitem(last=False)
        return fingerprint

    def _plan_hash_for(self, plan: Any) -> str:
        """Memoized hash of an executed plan object ("reference" when
        no physical plan ran)."""
        if plan is None:
            return "reference"
        entry = self._plan_hashes.get(id(plan))
        if entry is not None and entry[0] is plan:
            return entry[1]
        value = plan_hash(plan)
        self._plan_hashes[id(plan)] = (plan, value)
        if len(self._plan_hashes) > 2 * self.COMPILE_CACHE_SIZE:
            self._plan_hashes.clear()
            self._plan_hashes[id(plan)] = (plan, value)
        return value

    @staticmethod
    def _executed_plan(evaluator: Evaluator, core: ast.Query) -> Any:
        """The physical plan this execution ran the top-level block on
        (streaming or batch cache), or None for the reference path."""
        body = core.body
        if not isinstance(body, ast.QueryBlock):
            return None
        entry = evaluator._plans.get(id(body))
        if entry is not None and entry[1] is not None:
            return entry[1]
        entry = evaluator._batch_plans.get(id(body))
        if entry is not None:
            return entry[1]
        return None

    def _store_observe(
        self,
        store: QueryStore,
        metrics: QueryMetrics,
        core: Optional[ast.Query],
        evaluator: Optional[Evaluator],
        tracer: Optional[ExecTracer],
        feedback_tracer: Optional[ExecTracer],
    ) -> None:
        """Fold one finished execution into the query store: plan hash,
        q-error, cardinality feedback, gauges.  Runs in ``execute``'s
        ``finally`` — it must never raise over the query's own outcome,
        and it only reads state the execution already produced."""
        executed_plan = (
            self._executed_plan(evaluator, core)
            if evaluator is not None and core is not None
            else None
        )
        if evaluator is not None:
            metrics.plan_hash = self._plan_hash_for(executed_plan)
        qerror = None
        if tracer is not None and executed_plan is not None:
            qerror = plan_max_qerror(executed_plan, tracer)
        if feedback_tracer is not None and metrics.status == "ok":
            # Feed actual cardinalities back to the planner — but only
            # from complete runs: LIMIT/OFFSET truncation would record
            # how many rows the consumer *wanted*, not how many exist.
            if (
                executed_plan is not None
                and core is not None
                and core.limit is None
                and core.offset is None
            ):
                record_plan_feedback(
                    executed_plan, feedback_tracer, self._stats
                )
            # Mark even when nothing was learnable, so an unplannable
            # fingerprint is not re-traced forever.
            store.mark_feedback(metrics.fingerprint, self.catalog.data_version)
        store.observe(
            metrics.fingerprint,
            metrics.query,
            metrics.plan_hash,
            metrics.status,
            metrics.total_s,
            metrics.rows_returned,
            qerror,
        )
        store.export_gauges(self.metrics)

    #: Bound on the collection size ``check`` will sample to infer an
    #: abstract shape for a schemaless named value.
    CHECK_SAMPLE_LIMIT = 200

    def check(
        self,
        query: str,
        typing_mode: Optional[str] = None,
        sql_compat: Optional[bool] = None,
        suppress: Sequence[str] = (),
    ) -> List[Any]:
        """Statically analyze a query without executing it.

        Runs the :mod:`repro.analysis` passes — parse, rewrite to Core,
        scope resolution, abstract type flow — against this database's
        catalog, language dials and registered schemas, and returns the
        list of :class:`~repro.analysis.Diagnostic` findings (empty
        when the query is clean).  Never raises on a bad query: a parse
        failure is itself a finding (``SQLPP000``).

        The abstract-type lattice is seeded from registered schemas
        (closed shapes, trusted because values are validated on
        ``set``); schemaless named values up to ``CHECK_SAMPLE_LIMIT``
        elements are sampled via :func:`repro.schema.infer.infer_schema`
        and contribute *open* shapes, so sampling can sharpen warnings
        but never claims an attribute can't exist.  ``suppress`` drops
        the given rule codes; ``-- sqlpp-ignore: CODE`` comments in the
        query suppress per-line.

        Each call bumps the ``lint_checks`` / ``lint_errors`` /
        ``lint_warnings`` metrics counters (exposed as
        ``repro_lint_*`` in Prometheus text).
        """
        from repro.analysis import AnalyzerOptions, analyze
        from repro.analysis.diagnostics import ERROR, WARNING
        from repro.analysis.lattice import AType, from_schema, soften

        config = self._effective_config(typing_mode, sql_compat)
        catalog_types: Dict[str, AType] = {}
        for name in self.catalog.names():
            schema = self._schemas.get(name)
            if schema is None:
                schema = self._sampled_schema(name)
                if schema is None:
                    continue
                catalog_types[name] = soften(from_schema(schema))
            else:
                catalog_types[name] = from_schema(schema)
        options = AnalyzerOptions(
            config=config,
            catalog_names=tuple(self.catalog.names()),
            catalog_types=catalog_types,
            schema_attrs=self._schema_attrs(),
            suppress=tuple(suppress),
        )
        diagnostics = analyze(query, options)
        self.metrics.increment("lint_checks")
        errors = sum(1 for d in diagnostics if d.severity == ERROR)
        warnings = sum(1 for d in diagnostics if d.severity == WARNING)
        if errors:
            self.metrics.increment("lint_errors", errors)
        if warnings:
            self.metrics.increment("lint_warnings", warnings)
        return diagnostics

    def _sampled_schema(self, name: str) -> Optional[Any]:
        """An inferred schema for a small materialized named value
        (None for large, lazy, or un-inferrable values)."""
        from repro.datamodel.values import LazyBag
        from repro.errors import SchemaError
        from repro.schema.infer import infer_schema

        value = self.catalog.get(name)
        if isinstance(value, LazyBag):
            return None
        if isinstance(value, (list, Bag)) and len(value) > self.CHECK_SAMPLE_LIMIT:
            return None
        try:
            return infer_schema(value)
        except SchemaError:
            return None

    def execute_python(
        self,
        query: str,
        parameters: Optional[Sequence[Any]] = None,
        typing_mode: Optional[str] = None,
        sql_compat: Optional[bool] = None,
    ) -> Any:
        """Execute and convert the result to plain Python data."""
        result = self.execute(
            query,
            parameters=parameters,
            typing_mode=typing_mode,
            sql_compat=sql_compat,
        )
        return to_python(result)

    def explain(
        self,
        query: str,
        typing_mode: Optional[str] = None,
        sql_compat: Optional[bool] = None,
    ) -> str:
        """The rewritten SQL++ Core text for a query.

        Shows the sugar rewritings the paper describes: plain SELECT
        becomes SELECT VALUE, SQL aggregates become ``COLL_*`` over the
        GROUP AS group, coercions become explicit.
        """
        return print_ast(self.compile(query, typing_mode, sql_compat))

    def explain_plan(
        self,
        query: str,
        typing_mode: Optional[str] = None,
        sql_compat: Optional[bool] = None,
    ) -> str:
        """The physical plan the optimizer chose for a query (the
        ``EXPLAIN`` verb): the FROM operator tree — hash joins, scans
        with pushed-down filters, materialization — the residual WHERE,
        and the list of rewrites that fired.  When no rewrite applies
        (or in strict mode), says so and names the reference pipeline.
        """
        from repro.core.planner import plan_block

        config = self._effective_config(typing_mode, sql_compat)
        core, __, fired, ___ = self._compile_profiled(
            query, typing_mode, sql_compat
        )
        lines = [
            f"core: {print_ast(core)}",
            f"rewrites: {_format_rewrites(fired)}",
            "",
        ]
        body = core.body
        if not isinstance(body, ast.QueryBlock):
            lines.append(
                "plan: reference pipeline "
                "(query body is not a single query block)"
            )
            return "\n".join(lines)
        reorder_ok = (
            not core.order_by
            and body.group_by is None
            and not getattr(body.select, "distinct", False)
        )
        plan = plan_block(
            body,
            config,
            stats=self._stats,
            reorder_ok=reorder_ok,
            catalog_names=set(self.catalog.names()),
        )
        if plan is None:
            if not config.optimize:
                reason = "optimization disabled"
            elif not config.is_permissive:
                reason = "strict typing mode preserves evaluation order"
            elif body.from_ is None:
                reason = "no FROM clause"
            else:
                reason = "no rewrite applicable"
            lines.append(f"plan: reference pipeline ({reason})")
        else:
            lines.append(plan.explain())
        consumer = self._describe_consumer(core, config)
        if consumer is not None:
            lines.append(f"consumer: {consumer}")
        return "\n".join(lines)

    def verify_plan(
        self,
        query: str,
        typing_mode: Optional[str] = None,
        sql_compat: Optional[bool] = None,
    ) -> List[str]:
        """Run the structural verifier over a query's rewrite output and
        every physical plan its blocks produce; returns the list of
        violations (empty = every invariant holds).

        This is the on-demand form of the ``REPRO_VERIFY_PLANS=1``
        debug mode (:mod:`repro.analysis.verify_plan`): binding
        well-formedness, filter/key scoping, estimate monotonicity,
        span presence, and operator-tree shape.  Nested subquery blocks
        are planned (``force=True``) and checked too, so coverage does
        not depend on whether a rewrite happened to fire.
        """
        from repro.analysis.verify_plan import (
            verify_block_plan,
            verify_rewrite,
        )
        from repro.core.planner import plan_block

        config = self._effective_config(typing_mode, sql_compat)
        core, pre_core, fired, __ = self._compile_profiled(
            query, typing_mode, sql_compat
        )
        violations = list(
            verify_rewrite(
                pre_core, core, fired, catalog_names=self.catalog.names()
            )
        )
        catalog_names = set(self.catalog.names())
        for node in core.walk():
            if not isinstance(node, ast.QueryBlock):
                continue
            plan = plan_block(
                node,
                config,
                stats=self._stats,
                force=True,
                catalog_names=catalog_names,
            )
            if plan is not None:
                violations.extend(verify_block_plan(plan))
        return violations

    def explain_rewrites(
        self,
        query: str,
        typing_mode: Optional[str] = None,
        sql_compat: Optional[bool] = None,
    ) -> str:
        """The semantic rewrites that fire for a query, with the safety
        conditions each firing discharged (the CLI's
        ``--explain-rewrites``; docs/REWRITER.md has the rule catalog).
        """
        core, pre_core, fired, __ = self._compile_profiled(
            query, typing_mode, sql_compat
        )
        lines = [f"pre:  {print_ast(pre_core)}"]
        if not fired:
            config = self._effective_config(typing_mode, sql_compat)
            if not (config.rewrite and config.optimize):
                lines.append("rewrites: disabled (rewrite/optimize off)")
            else:
                lines.append("rewrites: none applicable")
            return "\n".join(lines)
        lines.append(f"post: {print_ast(core)}")
        lines.append("")
        for result in fired:
            lines.append(result.describe())
            for condition in result.safety:
                lines.append(f"  - {condition}")
        return "\n".join(lines)

    @staticmethod
    def _describe_consumer(core: ast.Query, config: EvalConfig) -> Optional[str]:
        """How the streaming engine consumes the block's output stream
        (None when the query runs on the eager reference path)."""
        body = core.body
        if (
            not config.optimize
            or not isinstance(body, ast.QueryBlock)
            or body.from_ is None
            or isinstance(body.select, ast.PivotClause)
        ):
            return None
        from repro.core.windows import find_window_calls

        if find_window_calls(body.select):
            return None
        if core.order_by:
            if core.limit is not None:
                return (
                    "top-K heap (ORDER BY with LIMIT): keeps limit+offset "
                    "rows, one sort-key evaluation per row"
                )
            return "full sort over the streamed input (ORDER BY without LIMIT)"
        if core.limit is not None:
            return "streamed with early termination after OFFSET+LIMIT rows"
        return "streamed bag (rows pulled one at a time)"

    def explain_analyze(
        self,
        query: str,
        parameters: Optional[Sequence[Any]] = None,
        typing_mode: Optional[str] = None,
        sql_compat: Optional[bool] = None,
        optimize: Optional[bool] = None,
        timeout_s: Optional[float] = None,
        max_rows: Optional[int] = None,
        max_recursion: Optional[int] = None,
        batch: Optional[bool] = None,
        parallel: Optional[int] = None,
    ) -> str:
        """Execute the query and report the plan annotated with runtime
        statistics (the ``EXPLAIN ANALYZE`` verb).

        Each operator line carries its invocation count, rows in/out,
        inclusive wall time and the planner's row estimate against the
        actual (``est= actual= q-err=``, worst misestimate flagged); the
        clause pipeline's stage row counts and the per-phase timings
        (parse/rewrite/plan/execute) follow.  On the optimized path the
        annotated tree is the physical plan; with ``optimize=False`` (or
        whenever the planner declines) it is the reference nested-loop
        FROM tree, so all execution strategies — streaming, batch
        (``batch=True`` shapes), parallel (``parallel=N``) — are
        observable (docs/OBSERVABILITY.md).

        The query really runs, so resource limits apply; a breached
        limit raises :class:`~repro.errors.ResourceExhausted` exactly as
        ``execute`` would.
        """
        tracer = ExecTracer()
        result = self.execute(
            query,
            parameters=parameters,
            typing_mode=typing_mode,
            sql_compat=sql_compat,
            optimize=optimize,
            timeout_s=timeout_s,
            max_rows=max_rows,
            max_recursion=max_recursion,
            batch=batch,
            parallel=parallel,
            tracer=tracer,
        )
        core, __, fired, ___ = self._compile_profiled(
            query,
            typing_mode,
            sql_compat,
            optimize=optimize,
        )
        metrics = self.metrics.last
        lines = [
            f"core: {print_ast(core)}",
            f"rewrites: {_format_rewrites(fired)}",
            "",
        ]
        body = core.body
        if isinstance(body, ast.QueryBlock):
            plan = tracer.plan_for(body)
            if plan is not None:
                lines.append(plan.explain(tracer))
            elif body.from_ is not None:
                lines.append("plan: reference pipeline")
                lines.append("FROM")
                lines.extend(tracer.reference_lines(list(body.from_)))
            else:
                lines.append("plan: expression only (no FROM clause)")
            stages = tracer.stages_for(body)
            if stages:
                lines.append("")
                lines.append("stages:")
                width = max(len(stats.label) for stats in stages)
                lines.extend(
                    f"  {stats.label.ljust(width)}{stats.suffix()}"
                    for stats in stages
                )
        else:
            lines.append(
                "plan: reference pipeline "
                "(query body is not a single query block)"
            )
        lines.append("")
        lines.append("phases:")
        if metrics is not None:
            lines.extend("  " + line for line in metrics.format_phases())
        if is_collection(result):
            lines.append(f"rows returned: {len(result)}")
        return "\n".join(lines)

    def trace(
        self,
        query: str,
        parameters: Optional[Sequence[Any]] = None,
        typing_mode: Optional[str] = None,
        sql_compat: Optional[bool] = None,
        optimize: Optional[bool] = None,
        timeout_s: Optional[float] = None,
        max_rows: Optional[int] = None,
        max_recursion: Optional[int] = None,
        context: Optional[TraceContext] = None,
    ) -> TraceContext:
        """Execute the query and return its structured span trace.

        The returned :class:`~repro.observability.TraceContext` holds
        one span tree for the run — the ``query`` root, the
        ``parse``/``rewrite``/``plan``/``execute`` phases, every
        physical plan operator (or reference nested-loop FROM item) and
        every clause-pipeline stage — exportable via
        ``to_chrome_trace()`` (Perfetto / ``chrome://tracing``),
        ``to_collapsed()`` (flamegraph.pl / speedscope) and
        ``format_tree()`` (the REPL's ``.trace``).

        The query really runs (same semantics, limits and metrics
        recording as ``execute``); pass ``context`` to accumulate
        several queries into one trace, as ``--trace-out`` does.
        Errors propagate exactly as from ``execute`` — pass your own
        ``context`` when you want to keep the partial trace of a
        failing query.
        """
        trace_context = (
            context if context is not None else TraceContext(name=query[:120])
        )
        tracer = ExecTracer(trace=trace_context)
        self.execute(
            query,
            parameters=parameters,
            typing_mode=typing_mode,
            sql_compat=sql_compat,
            optimize=optimize,
            timeout_s=timeout_s,
            max_rows=max_rows,
            max_recursion=max_recursion,
            tracer=tracer,
        )
        return trace_context

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release observability resources (open sink file handles).

        Queries remain executable afterwards — a JSON-lines sink
        reopens its file on the next record — so ``close`` is about
        flushing and releasing descriptors, not ending the database's
        life.  Idempotent.
        """
        self.metrics.close()
        if self._query_store is not None:
            self._query_store.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Data formats
    # ------------------------------------------------------------------

    def load(self, name: str, path: str, format: Optional[str] = None) -> None:
        """Load a file into a named value using a format codec.

        ``format`` defaults from the file extension (``.json``, ``.csv``,
        ``.cbor``, ``.ion``, ``.sqlpp``).
        """
        from repro.formats.registry import read_file

        self.set(name, read_file(path, format))

    def dump(self, name: str, path: str, format: Optional[str] = None) -> None:
        """Write a named value to a file using a format codec."""
        from repro.formats.registry import write_file

        write_file(self.get(name), path, format)

    def load_value(self, name: str, text: str, format: str = "sqlpp") -> None:
        """Load a named value from literal text in a given format."""
        from repro.formats.registry import read_text

        self.set(name, read_text(text, format))


def _format_rewrites(fired: Tuple[Any, ...]) -> str:
    """The EXPLAIN ``rewrites:`` line: per-rule fire counts in registry
    order, or ``none``."""
    if not fired:
        return "none"
    counts: "OrderedDict[str, int]" = OrderedDict()
    names: Dict[str, str] = {}
    for result in fired:
        counts[result.code] = counts.get(result.code, 0) + 1
        names[result.code] = result.name
    return ", ".join(
        f"{code} {names[code]} x{count}" for code, count in counts.items()
    )


def _missing_to_null(result: Any) -> Any:
    """Replace top-level MISSING elements with NULL (client adaptation)."""
    if result is MISSING:
        return None
    if isinstance(result, Bag):
        return Bag(None if item is MISSING else item for item in result)
    if isinstance(result, list):
        return [None if item is MISSING else item for item in result]
    return result
