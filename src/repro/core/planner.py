"""The physical query planner.

Sits between the sugar→Core rewriter and the evaluator: given a Core
:class:`~repro.syntax.ast.QueryBlock`, it analyzes the FROM clause and
the WHERE conjunction and produces a :class:`BlockPlan` of physical
operators (:mod:`repro.core.plan_ops`) plus a residual WHERE.  The
rewrites it can fire:

* **hash-equi-join** — an uncorrelated join whose ``ON`` is a
  conjunction containing at least one equality that splits cleanly
  into a left-side and a right-side key expression becomes a
  :class:`~repro.core.plan_ops.HashJoinOp`;
* **materialize-right** — an uncorrelated join right side that does not
  qualify for hashing (non-equi ``ON``, CROSS) is materialized once
  instead of re-enumerated per left binding;
* **materialize-once** — an uncorrelated later FROM item in a comma
  cross product is enumerated once instead of once per upstream
  binding;
* **predicate-pushdown** — WHERE conjuncts over a single FROM item's
  variables are evaluated during that item's enumeration, before the
  cross product is materialized; conjuncts over a prefix of items are
  applied as soon as the prefix is complete.

Fallback rules (the planner *refuses* and the reference semantics run
unchanged) — see docs/PLANNER.md:

* strict typing mode: the reference pipeline's evaluation order is
  observable through raised errors, so no rewriting happens at all;
* correlated (lateral) right sides: the reference nested loop runs,
  via :class:`~repro.core.plan_ops.CorrelatedJoinOp`;
* pushdown is skipped when the block has LET clauses (LET evaluates
  between FROM and WHERE in the reference pipeline);
* a conjunct is only relocated when it is *relocatable*: built from
  node kinds that cannot raise before the WHERE clause would have
  (no window calls, subqueries, parameters, unknown functions);
* duplicate variable names across join sides disable hashing.

Every plan is checked against the reference (``optimize=False``) output
by the property tests and the compat-kit parity test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from repro.config import EvalConfig
from repro.core.plan_ops import (
    CorrelatedJoinOp,
    EmptyOp,
    HashJoinOp,
    MaterializeJoinOp,
    PlanOp,
    ScanOp,
)
from repro.functions.registry import REGISTRY
from repro.syntax import ast


# =========================================================================
# Analyses
# =========================================================================


def free_names(node: ast.Node) -> Set[str]:
    """Every variable name referenced anywhere under ``node``.

    A conservative over-approximation of the free variables: names bound
    inside nested subqueries are included too, which can only make the
    planner *more* cautious (a rewrite is applied only when the name set
    proves independence).
    """
    return {n.name for n in node.walk() if isinstance(n, ast.VarRef)}


def item_vars(item: ast.FromItem) -> List[str]:
    """The variables a FROM item binds, in binding order (matches
    ``Evaluator._collect_item_vars``)."""
    result: List[str] = []
    _collect_vars(item, result)
    return result


def _collect_vars(item: ast.FromItem, out: List[str]) -> None:
    if isinstance(item, ast.FromCollection):
        out.append(item.alias)
        if item.at_alias:
            out.append(item.at_alias)
    elif isinstance(item, ast.FromUnpivot):
        out.append(item.value_alias)
        out.append(item.at_alias)
    elif isinstance(item, ast.FromJoin):
        _collect_vars(item.left, out)
        _collect_vars(item.right, out)


_UNSAFE_NODES = (ast.WindowCall, ast.SubqueryExpr, ast.CoerceSubquery, ast.Parameter)


def is_relocatable(expr: ast.Expr) -> bool:
    """Whether evaluating ``expr`` earlier/fewer times than the
    reference WHERE/ON position is unobservable in permissive mode.

    Permissive typing turns dynamic type errors into MISSING, so most
    expressions are total; the exceptions that can still raise or carry
    evaluation state — window calls, subqueries, positional parameters,
    unknown or ``*`` function calls — keep a conjunct pinned in place.
    """
    for node in expr.walk():
        if isinstance(node, _UNSAFE_NODES):
            return False
        if isinstance(node, ast.FunctionCall):
            if node.star or REGISTRY.lookup(node.name) is None:
                return False
    return True


def split_conjuncts(expr: ast.Expr) -> List[ast.Expr]:
    """Flatten a conjunction tree into its conjuncts.

    Keeping a binding requires the whole AND tree to be exactly TRUE,
    which (by 3-valued AND) holds iff every conjunct is exactly TRUE —
    so conjunct-wise filtering is equivalent to filtering on the tree.
    """
    if isinstance(expr, ast.Binary) and expr.op == "AND":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def and_fold(conjuncts: List[ast.Expr]) -> Optional[ast.Expr]:
    """Fold conjuncts back into an AND tree (inverse of
    :func:`split_conjuncts`); None for an empty list.  Shared with the
    semantic rewrite registry (:mod:`repro.core.rewrite_rules`), which
    splits a WHERE, replaces or removes conjuncts, and refolds."""
    if not conjuncts:
        return None
    folded = conjuncts[0]
    for conjunct in conjuncts[1:]:
        rebuilt = ast.Binary(op="AND", left=folded, right=conjunct)
        # The synthesized AND carries its left arm's span so any lint
        # finding or error on the refolded tree points at source the
        # user actually wrote.
        ast.copy_span(rebuilt, folded)
        folded = rebuilt
    return folded


#: Backwards-compatible private alias (pre-registry internal name).
_and_fold = and_fold


# =========================================================================
# The plan
# =========================================================================


@dataclass
class ItemPlan:
    """One top-level FROM item: its operator plus cross-product hints."""

    op: PlanOp
    #: Independent of every earlier item's variables → enumerate once.
    uncorrelated: bool = False
    #: Pushed conjuncts over a *prefix* of items, applied right after
    #: this item extends the binding stream.
    prefix_filters: List[ast.Expr] = field(default_factory=list)


@dataclass
class BlockPlan:
    """The physical plan for one query block's FROM + WHERE stages."""

    items: List[ItemPlan]
    residual_where: Optional[ast.Expr]
    rewrites: List[str]
    #: ``stats: <collection>: rows=…`` EXPLAIN lines, one per scanned
    #: collection with catalog statistics (empty without a provider).
    stats_lines: List[str] = field(default_factory=list)
    #: ``order: a ⋈ b (syntactic: b ⋈ a)`` EXPLAIN line for join plans
    #: costed against statistics; None when no join order was costed.
    order_line: Optional[str] = None
    #: Why the whole FROM/WHERE pipeline was proven empty and replaced
    #: by an :class:`~repro.core.plan_ops.EmptyOp`; None for ordinary
    #: plans.  Rendered as a ``pruned:`` EXPLAIN line.
    pruned: Optional[str] = None

    def execute(self, evaluator, env) -> list:
        """Produce the block's binding environments eagerly (the
        materialized form of :meth:`iter_envs`)."""
        return list(self.iter_envs(evaluator, env))

    def iter_envs(self, evaluator, env):
        """Stream the block's binding environments (replaces the
        reference FROM loop and part of the WHERE in ``eval_block``).

        Pipelined: each upstream environment flows through the item
        chain as soon as it exists, so a downstream consumer that stops
        pulling (LIMIT, top-K, EXISTS) stops every operator.  The
        materialize-once rewrite survives streaming — an uncorrelated
        item is enumerated a single time, caching its rows while the
        first upstream environment streams through and replaying the
        cache for later ones.  An item is never enumerated before the
        upstream stream produces an environment, matching the reference
        pipeline's behavior on empty streams (error parity).
        """
        stream = iter((env,))
        for item_plan in self.items:
            stream = self._extend_stream(evaluator, env, stream, item_plan)
        return stream

    def _extend_stream(self, evaluator, root_env, upstream, item_plan):
        governor = evaluator.governor
        fns = [evaluator.compiled(p) for p in item_plan.prefix_filters]
        if item_plan.uncorrelated:
            # Uncorrelated: the operator's rows do not depend on the
            # upstream environment, so enumerate against the root
            # environment once and replay for later upstream rows.  The
            # replayed cross product can explode on its own; account
            # for replayed extensions in the governor per row.
            cache = None
            for current in upstream:
                if cache is None:
                    cache = []
                    for row in item_plan.op.iter_bindings(evaluator, root_env):
                        cache.append(row)
                        extended = current.extend(row)
                        if not fns or all(fn(extended) is True for fn in fns):
                            yield extended
                else:
                    for row in cache:
                        if governor is not None:
                            governor.add(1)
                        extended = current.extend(row)
                        if not fns or all(fn(extended) is True for fn in fns):
                            yield extended
        else:
            for current in upstream:
                for row in item_plan.op.iter_bindings(evaluator, current):
                    extended = current.extend(row)
                    if not fns or all(fn(extended) is True for fn in fns):
                        yield extended

    def explain(self, tracer=None) -> str:
        """The plan as text; with a tracer, annotated with runtime stats
        (EXPLAIN ANALYZE) and the est/actual/q-err comparison, the
        worst misestimate flagged."""
        from repro.syntax.printer import print_ast

        worst_id = (
            _worst_misestimate(self.items, tracer) if tracer is not None else None
        )
        lines = ["FROM"]
        for item_plan in self.items:
            op_lines = item_plan.op.explain_lines(1, tracer, worst_id)
            if item_plan.uncorrelated and len(self.items) > 1:
                op_lines[0] += "  [materialized once]"
            lines.extend(op_lines)
            for predicate in item_plan.prefix_filters:
                lines.append(f"  filter (prefix): {print_ast(predicate)}")
        if self.pruned is not None:
            lines.append(f"pruned: {self.pruned}")
        lines.extend(self.stats_lines)
        if self.order_line is not None:
            lines.append(self.order_line)
        if self.residual_where is not None:
            lines.append(f"WHERE (residual): {print_ast(self.residual_where)}")
        else:
            lines.append("WHERE: (none — fully pushed down or absent)")
        lines.append("rewrites fired:")
        if self.rewrites:
            lines.extend(f"  - {rewrite}" for rewrite in self.rewrites)
        else:
            lines.append("  - (none)")
        return "\n".join(lines)


# =========================================================================
# Planning
# =========================================================================


def plan_block(
    block: ast.QueryBlock,
    config: EvalConfig,
    stats=None,
    reorder_ok: bool = False,
    force: bool = False,
    catalog_names: Optional[Set[str]] = None,
) -> Optional[BlockPlan]:
    """Plan a Core query block; None means "run the reference pipeline".

    Returns a plan only when at least one rewrite fires, so the
    reference path stays the common case for trivial queries —
    ``force=True`` (the batch executor, which needs an operator tree
    even for a plain scan) returns a plan regardless.

    ``stats`` is an optional
    :class:`repro.catalog.statistics.StatsProvider`; with one, scanned
    collections get ``stats:`` EXPLAIN lines, and when ``reorder_ok``
    additionally holds (the caller proved the block's output order is
    unobservable — no ORDER BY / GROUP BY / DISTINCT downstream), inner
    hash-join trees are re-ordered greedily by estimated cardinality.

    ``catalog_names`` (when the caller knows them) lets abstract
    interpretation prove a never-TRUE WHERE clause's block empty and
    collapse the whole pipeline to a zero-row
    :class:`~repro.core.plan_ops.EmptyOp` (EXPLAIN ``pruned:`` line).
    """
    if block.from_ is None:
        return None
    if not config.optimize or not config.is_permissive:
        return None

    if block.where is not None:
        # Lazy import: absint layers on top of this module's helpers.
        from repro.analysis.absint import block_prune_reason

        reason = block_prune_reason(block, config, catalog_names)
        if reason is not None:
            variables: List[str] = []
            for item in block.from_:
                for name in item_vars(item):
                    if name not in variables:
                        variables.append(name)
            return BlockPlan(
                items=[ItemPlan(op=EmptyOp(variables, reason))],
                residual_where=None,
                rewrites=[f"prune-empty: {reason}"],
                pruned=reason,
            )

    rewrites: List[str] = []
    item_plans: List[ItemPlan] = []
    item_var_sets: List[Set[str]] = []
    prev_vars: Set[str] = set()
    for index, item in enumerate(block.from_):
        op = _plan_item(item, rewrites)
        names = free_names(item)
        uncorrelated = not (names & prev_vars)
        if uncorrelated and index > 0:
            rewrites.append(f"materialize-once: FROM item #{index + 1}")
        item_plans.append(ItemPlan(op=op, uncorrelated=uncorrelated))
        variables = set(item_vars(item))
        item_var_sets.append(variables)
        prev_vars |= variables

    residual_where = block.where
    # Pushdown is only safe when nothing evaluates between FROM and
    # WHERE in the reference pipeline (LET does).
    if block.where is not None and not block.lets:
        conjuncts: List[ast.Expr] = []
        for conjunct in split_conjuncts(block.where):
            # A literal TRUE conjunct filters nothing and cannot raise
            # under permissive typing; dropping it before pushdown
            # keeps it out of every per-row filter chain.
            if isinstance(conjunct, ast.Literal) and conjunct.value is True:
                rewrites.append("drop-true: TRUE conjunct removed")
                continue
            conjuncts.append(conjunct)
        residual: List[ast.Expr] = []
        for conjunct in conjuncts:
            if not _push_conjunct(conjunct, item_plans, item_var_sets, rewrites):
                residual.append(conjunct)
        if len(residual) < len(split_conjuncts(block.where)):
            residual_where = _and_fold(residual)

    stats_lines: List[str] = []
    order_line: Optional[str] = None
    if stats is not None:
        stats_lines = _stats_lines(item_plans, stats)
        if len(item_plans) == 1:
            order_line = _maybe_reorder(
                item_plans[0], stats, reorder_ok, rewrites
            )
        # After any reorder (it replaces operators): pin the planner's
        # row estimate onto every operator, so EXPLAIN ANALYZE can show
        # est= next to actual= and the query store can compute q-errors.
        annotate_estimates(item_plans, stats)

    if not rewrites and not force:
        return None
    return BlockPlan(
        items=item_plans,
        residual_where=residual_where,
        rewrites=rewrites,
        stats_lines=stats_lines,
        order_line=order_line,
    )


def _push_conjunct(
    conjunct: ast.Expr,
    item_plans: List[ItemPlan],
    item_var_sets: List[Set[str]],
    rewrites: List[str],
) -> bool:
    """Push one WHERE conjunct as deep as it can safely go; False keeps
    it in the residual WHERE."""
    from repro.syntax.printer import print_ast

    names = free_names(conjunct)
    if not names or not is_relocatable(conjunct):
        return False
    # Single-item conjunct: filter during that item's enumeration.
    for index, variables in enumerate(item_var_sets):
        if names <= variables:
            _attach_filter(item_plans[index].op, conjunct, names)
            rewrites.append(
                f"predicate-pushdown: {print_ast(conjunct)} "
                f"→ FROM item #{index + 1}"
            )
            return True
    # Prefix conjunct: apply right after the earliest prefix that binds
    # every referenced variable (worthless on the last item — that is
    # just WHERE).
    prefix: Set[str] = set()
    for index, variables in enumerate(item_var_sets):
        prefix |= variables
        if names <= prefix:
            if index >= len(item_var_sets) - 1:
                return False
            item_plans[index].prefix_filters.append(conjunct)
            rewrites.append(
                f"predicate-pushdown: {print_ast(conjunct)} "
                f"→ after FROM item #{index + 1}"
            )
            return True
    return False


def _attach_filter(op: PlanOp, conjunct: ast.Expr, names: Set[str]) -> None:
    """Attach a pushed conjunct to the deepest operator that binds all
    its variables.  Never descends into the padded (right) side of a
    LEFT join: filtering there before padding would change which rows
    get padded."""
    if isinstance(op, (HashJoinOp, MaterializeJoinOp, CorrelatedJoinOp)):
        if names <= set(op.left.vars):
            _attach_filter(op.left, conjunct, names)
            return
    if isinstance(op, (HashJoinOp, MaterializeJoinOp)) and op.kind != "LEFT":
        if names <= set(op.right.vars):
            _attach_filter(op.right, conjunct, names)
            return
    op.filters.append(conjunct)


def _plan_item(item: ast.FromItem, rewrites: List[str]) -> PlanOp:
    """Plan one FROM item subtree (joins recurse; leaves scan)."""
    if isinstance(item, ast.FromJoin):
        return _plan_join(item, rewrites)
    op = ScanOp(item)
    op.vars = item_vars(item)
    return op


def _plan_join(item: ast.FromJoin, rewrites: List[str]) -> PlanOp:
    left_op = _plan_item(item.left, rewrites)
    left_vars = set(item_vars(item.left))
    right_vars = item_vars(item.right)
    right_names = free_names(item.right)

    op: PlanOp
    if right_names & left_vars:
        # Lateral right side: the paper's left-correlation semantics.
        op = CorrelatedJoinOp(left_op, item)
        op.right_vars = right_vars
    else:
        right_op = _plan_item(item.right, rewrites)
        split = None
        if (
            item.on is not None
            and item.kind in ("INNER", "LEFT")
            and not (left_vars & set(right_vars))
        ):
            split = _split_equi_on(item.on, left_vars, set(right_vars))
        if split is not None:
            left_keys, right_keys, residual = split
            op = HashJoinOp(
                left_op,
                right_op,
                item.kind,
                left_keys,
                right_keys,
                residual,
                right_vars,
            )
            rewrites.append(
                f"hash-equi-join[{item.kind}]: {op.describe()}"
            )
        else:
            op = MaterializeJoinOp(
                left_op, right_op, item.kind, item.on, right_vars
            )
            rewrites.append(
                f"materialize-right[{item.kind}]: right side enumerated once"
            )
    op.vars = item_vars(item)
    return op


# =========================================================================
# Statistics-fed join ordering
# =========================================================================

#: Below this many total base rows, reordering cannot win enough to
#: matter and tiny fixtures keep their syntactic (pin-stable) plans.
MIN_REORDER_ROWS = 512


def _scan_ops(op: PlanOp) -> List[ScanOp]:
    result: List[ScanOp] = []
    if isinstance(op, ScanOp):
        result.append(op)
        return result
    for child in ("left", "right"):
        sub = getattr(op, child, None)
        if isinstance(sub, PlanOp):
            result.extend(_scan_ops(sub))
    return result


def _stats_lines(item_plans: List[ItemPlan], stats) -> List[str]:
    """One ``stats:`` line per scanned collection with statistics."""
    from repro.catalog.statistics import source_name

    lines: List[str] = []
    seen: Set[str] = set()
    for item_plan in item_plans:
        for scan in _scan_ops(item_plan.op):
            if not isinstance(scan.item, ast.FromCollection):
                continue
            name = source_name(scan.item.expr)
            if name is None or name in seen:
                continue
            seen.add(name)
            collected = stats.stats_for(name)
            if collected is not None:
                lines.append(f"stats: {name}: {collected.summary()}")
    return lines


@dataclass
class _JoinLeaf:
    """One base scan of a flattened inner-join tree, with its cost."""

    scan: ScanOp
    alias: str
    name: str
    vars: Set[str]
    #: Estimated surviving rows (row count × pushed-filter selectivity).
    estimate: float
    stats: object


@dataclass
class _JoinEdge:
    """One equi-key conjunct linking two leaves."""

    a_leaf: int
    a_expr: ast.Expr
    a_attr: Optional[str]
    b_leaf: int
    b_expr: ast.Expr
    b_attr: Optional[str]


def _maybe_reorder(
    item_plan: ItemPlan, stats, reorder_ok: bool, rewrites: List[str]
) -> Optional[str]:
    """Cost the join order of a pure-inner hash-join tree; reorder it
    greedily when allowed and profitable.  Returns the EXPLAIN
    ``order:`` line (also produced when the order is merely *costed*,
    so EXPLAIN shows the decision either way), or None when the shape
    does not qualify."""
    flattened = _flatten_inner_joins(item_plan.op, stats)
    if flattened is None:
        return None
    leaves, edges, predicates = flattened
    syntactic = list(range(len(leaves)))
    total_rows = sum(leaf.stats.row_count for leaf in leaves)
    chosen = syntactic
    if reorder_ok and total_rows >= MIN_REORDER_ROWS:
        chosen = _greedy_order(leaves, edges, stats)
    order_text = " ⋈ ".join(leaves[i].alias for i in chosen)
    if chosen == syntactic:
        return f"order: {order_text} (syntactic)"
    syntactic_text = " ⋈ ".join(leaf.alias for leaf in leaves)
    item_plan.op = _rebuild_join_tree(leaves, edges, predicates, chosen)
    rewrites.append(
        f"join-reorder: {order_text} (syntactic: {syntactic_text})"
    )
    return f"order: {order_text} (syntactic: {syntactic_text})"


def _flatten_inner_joins(op: PlanOp, stats):
    """Flatten a pure-INNER HashJoinOp tree over FromCollection scans.

    Returns ``(leaves, edges, predicates)`` — predicates being residual
    conjuncts and join-node filters to reattach after reordering — or
    None when the tree does not qualify (any non-inner or non-hash
    join, a scan without statistics, or a key expression that does not
    fall within exactly one leaf's variables)."""
    from repro.catalog.statistics import source_name

    scans: List[ScanOp] = []
    joins: List[HashJoinOp] = []

    def collect(node: PlanOp) -> bool:
        if isinstance(node, ScanOp):
            scans.append(node)
            return True
        if isinstance(node, HashJoinOp) and node.kind == "INNER":
            joins.append(node)
            return collect(node.left) and collect(node.right)
        return False

    if not isinstance(op, HashJoinOp) or not collect(op):
        return None

    leaves: List[_JoinLeaf] = []
    for scan in scans:
        if not isinstance(scan.item, ast.FromCollection):
            return None
        name = source_name(scan.item.expr)
        if name is None:
            return None
        collected = stats.stats_for(name)
        if collected is None:
            return None
        estimate = float(collected.row_count)
        for predicate in scan.filters:
            estimate *= _selectivity(predicate, scan.item.alias, collected)
        estimate = max(estimate, 1.0)
        # An observed cardinality for this exact scan shape beats the
        # sampled guess: a prefix sample cannot see tail skew, an
        # executed scan counted every surviving row.
        feedback = getattr(stats, "feedback_rows", None)
        if feedback is not None:
            hint = feedback(scan_feedback_key(scan))
            if hint is not None:
                estimate = max(float(hint), 1.0)
        leaves.append(
            _JoinLeaf(
                scan=scan,
                alias=scan.item.alias,
                name=name,
                vars=set(scan.vars),
                estimate=estimate,
                stats=collected,
            )
        )

    def owner(expr: ast.Expr) -> Optional[int]:
        names = free_names(expr)
        if not names:
            return None
        for index, leaf in enumerate(leaves):
            if names <= leaf.vars:
                return index
        return None

    edges: List[_JoinEdge] = []
    predicates: List[ast.Expr] = []
    for join in joins:
        for left_key, right_key in zip(join.left_keys, join.right_keys):
            a = owner(left_key)
            b = owner(right_key)
            if a is None or b is None or a == b:
                return None
            edges.append(
                _JoinEdge(
                    a_leaf=a,
                    a_expr=left_key,
                    a_attr=_key_attr(left_key),
                    b_leaf=b,
                    b_expr=right_key,
                    b_attr=_key_attr(right_key),
                )
            )
        predicates.extend(join.residual)
        predicates.extend(join.filters)
    return leaves, edges, predicates


def _key_attr(expr: ast.Expr) -> Optional[str]:
    """The attribute a simple ``alias.attr`` key navigates, or None."""
    if isinstance(expr, ast.Path) and isinstance(expr.base, ast.VarRef):
        return expr.attr
    return None


def _selectivity(predicate: ast.Expr, alias: str, collected) -> float:
    """Cheap textbook selectivity for one pushed-down conjunct."""
    if isinstance(predicate, ast.Binary):
        attr = None
        for side in (predicate.left, predicate.right):
            candidate = _key_attr(side)
            if candidate is not None and isinstance(side.base, ast.VarRef):
                if side.base.name == alias:
                    attr = candidate
        if predicate.op == "=":
            if attr is not None:
                ndv = collected.ndv_for(attr)
                if ndv:
                    return 1.0 / ndv
            return 0.1
        if predicate.op in ("<", "<=", ">", ">="):
            return 1.0 / 3.0
    return 0.5


def _effective_rows(leaf: _JoinLeaf, attr: Optional[str]) -> float:
    """A leaf's estimate shrunk by its key's MISSING rate (rows whose
    key is absent can never match an equi-join)."""
    rows = leaf.estimate
    if attr is not None:
        rows *= 1.0 - leaf.stats.missing_for(attr)
    return max(rows, 1.0)


def _greedy_order(
    leaves: List[_JoinLeaf], edges: List[_JoinEdge], stats=None
) -> List[int]:
    """Greedy left-deep order: start from the largest leaf (the probe
    side streams; build sides materialize, so big inputs belong on the
    probe spine), then repeatedly append the connected leaf with the
    smallest estimated join output.

    With a feedback-carrying ``stats`` provider, a previously *observed*
    output cardinality for a candidate leaf pair replaces the ndv-model
    cost for that pair — the channel through which a misestimated join
    order corrects itself on re-execution."""
    feedback = (
        getattr(stats, "feedback_rows", None) if stats is not None else None
    )
    remaining = set(range(len(leaves)))
    first = max(remaining, key=lambda i: (leaves[i].estimate, -i))
    order = [first]
    remaining.discard(first)
    acc_rows = leaves[first].estimate
    while remaining:
        best = None
        best_cost = None
        for candidate in sorted(remaining):
            joined = _join_edges(order, candidate, edges)
            if not joined:
                continue
            divisor = 1.0
            cand_rows = leaves[candidate].estimate
            for edge in joined:
                if edge.a_leaf == candidate:
                    inner_attr, outer_attr = edge.a_attr, edge.b_attr
                    outer_leaf = edge.b_leaf
                else:
                    inner_attr, outer_attr = edge.b_attr, edge.a_attr
                    outer_leaf = edge.a_leaf
                cand_rows = min(
                    cand_rows, _effective_rows(leaves[candidate], inner_attr)
                )
                ndvs = []
                if inner_attr is not None:
                    ndv = leaves[candidate].stats.ndv_for(inner_attr)
                    if ndv:
                        ndvs.append(float(ndv))
                if outer_attr is not None:
                    ndv = leaves[outer_leaf].stats.ndv_for(outer_attr)
                    if ndv:
                        ndvs.append(float(ndv))
                if ndvs:
                    divisor = max(divisor, max(ndvs))
                else:
                    divisor = max(
                        divisor, max(acc_rows, cand_rows)
                    )  # |A⋈B| ≈ min(|A|,|B|) when ndv is unknown
            cost = acc_rows * cand_rows / divisor
            if feedback is not None and len(order) == 1:
                hint = feedback(
                    _pair_feedback_key(
                        leaves[order[0]], leaves[candidate], joined
                    )
                )
                if hint is not None:
                    cost = max(float(hint), 1.0)
            if best_cost is None or cost < best_cost:
                best = candidate
                best_cost = cost
        if best is None:
            # Disconnected remainder (cannot happen for trees built by
            # _plan_join, which always links the new leaf): keep the
            # syntactic relative order to stay safe.
            best = min(remaining)
            best_cost = acc_rows * leaves[best].estimate
        order.append(best)
        remaining.discard(best)
        acc_rows = max(best_cost, 1.0)
    return order


def _join_edges(
    order: List[int], candidate: int, edges: List[_JoinEdge]
) -> List[_JoinEdge]:
    placed = set(order)
    return [
        edge
        for edge in edges
        if (edge.a_leaf == candidate and edge.b_leaf in placed)
        or (edge.b_leaf == candidate and edge.a_leaf in placed)
    ]


def _rebuild_join_tree(
    leaves: List[_JoinLeaf],
    edges: List[_JoinEdge],
    predicates: List[ast.Expr],
    order: List[int],
) -> PlanOp:
    """A left-deep pure-INNER hash-join tree in the chosen order.

    Scans keep their pushed filters; equi-key conjuncts become the keys
    of whichever join first has both sides placed; everything else
    (residuals, join-node filters) reattaches by variable coverage —
    all joins are INNER, so conjunct placement commutes."""
    op: PlanOp = leaves[order[0]].scan
    acc_vars = list(leaves[order[0]].scan.vars)
    placed = {order[0]}
    used: Set[int] = set()
    for index in order[1:]:
        leaf = leaves[index]
        left_keys: List[ast.Expr] = []
        right_keys: List[ast.Expr] = []
        for edge_index, edge in enumerate(edges):
            if edge_index in used:
                continue
            if edge.a_leaf == index and edge.b_leaf in placed:
                left_keys.append(edge.b_expr)
                right_keys.append(edge.a_expr)
            elif edge.b_leaf == index and edge.a_leaf in placed:
                left_keys.append(edge.a_expr)
                right_keys.append(edge.b_expr)
            else:
                continue
            used.add(edge_index)
        joined = HashJoinOp(
            op,
            leaf.scan,
            "INNER",
            left_keys,
            right_keys,
            [],
            list(leaf.scan.vars),
        )
        acc_vars = acc_vars + list(leaf.scan.vars)
        joined.vars = list(acc_vars)
        placed.add(index)
        op = joined
    for predicate in predicates:
        _attach_filter(op, predicate, free_names(predicate))
    return op


def _split_equi_on(
    on: ast.Expr, left_vars: Set[str], right_vars: Set[str]
) -> Optional[Tuple[List[ast.Expr], List[ast.Expr], List[ast.Expr]]]:
    """Split a conjunctive ON into hashable key pairs plus residual.

    Returns ``(left_keys, right_keys, residual)`` or None when the join
    cannot hash: no clean equality conjunct, or a conjunct that is not
    relocatable (its evaluation pattern would change observably).
    """
    left_keys: List[ast.Expr] = []
    right_keys: List[ast.Expr] = []
    residual: List[ast.Expr] = []
    for conjunct in split_conjuncts(on):
        if not is_relocatable(conjunct):
            return None
        if isinstance(conjunct, ast.Binary) and conjunct.op == "=":
            a_names = free_names(conjunct.left)
            b_names = free_names(conjunct.right)
            if a_names <= left_vars and b_names <= right_vars:
                left_keys.append(conjunct.left)
                right_keys.append(conjunct.right)
                continue
            if a_names <= right_vars and b_names <= left_vars:
                left_keys.append(conjunct.right)
                right_keys.append(conjunct.left)
                continue
        residual.append(conjunct)
    if not left_keys:
        return None
    return left_keys, right_keys, residual


# =========================================================================
# Cardinality feedback & estimate annotation
# =========================================================================
#
# The query store (repro/observability/query_store.py) measures actual
# per-operator output rows on sampled executions and records them into
# the StatsProvider's FeedbackHints under *shape keys* built here.  The
# keys identify a scan or join by what determines its cardinality — the
# base collection(s) plus the sorted predicate/key prints — so a hint
# survives join reordering (sorted) but never leaks across different
# filters on the same collection.


def walk_plan_ops(op: PlanOp):
    """Yield ``op`` and every operator below it (build sides included)."""
    yield op
    for child in ("left", "right"):
        sub = getattr(op, child, None)
        if isinstance(sub, PlanOp):
            yield from walk_plan_ops(sub)


def scan_feedback_key(scan: PlanOp) -> Optional[str]:
    """The feedback-hint key for a base-collection scan, or None."""
    from repro.catalog.statistics import source_name
    from repro.syntax.printer import print_ast

    if not isinstance(scan, ScanOp) or not isinstance(
        scan.item, ast.FromCollection
    ):
        return None
    name = source_name(scan.item.expr)
    if name is None:
        return None
    filters = ",".join(sorted(print_ast(p) for p in scan.filters))
    return f"scan|{name}|{filters}"


def join_feedback_key(op: PlanOp) -> Optional[str]:
    """The feedback-hint key for a hash join over base scans, or None."""
    from repro.catalog.statistics import source_name
    from repro.syntax.printer import print_ast

    if not isinstance(op, HashJoinOp):
        return None
    names: List[str] = []
    for scan in _scan_ops(op):
        if not isinstance(scan.item, ast.FromCollection):
            return None
        name = source_name(scan.item.expr)
        if name is None:
            return None
        names.append(name)
    key_texts = [print_ast(k) for k in list(op.left_keys) + list(op.right_keys)]
    predicate_texts = [
        print_ast(p) for p in list(op.residual) + list(op.filters)
    ]
    return _join_key_text(op.kind, names, key_texts, predicate_texts)


def _join_key_text(
    kind: str,
    names: List[str],
    key_texts: List[str],
    predicate_texts: List[str],
) -> str:
    return "|".join(
        [
            f"join[{kind}]",
            ",".join(sorted(names)),
            ",".join(sorted(key_texts)),
            ",".join(sorted(predicate_texts)),
        ]
    )


def _pair_feedback_key(
    leaf_a: _JoinLeaf, leaf_b: _JoinLeaf, joined: List[_JoinEdge]
) -> str:
    """The key an executed 2-leaf hash join would have recorded under.

    A rebuilt pair join carries the edge key expressions and no
    join-node predicates (residuals attach by coverage afterwards), so
    that is the shape looked up here."""
    from repro.syntax.printer import print_ast

    key_texts: List[str] = []
    for edge in joined:
        key_texts.append(print_ast(edge.a_expr))
        key_texts.append(print_ast(edge.b_expr))
    return _join_key_text("INNER", [leaf_a.name, leaf_b.name], key_texts, [])


def annotate_estimates(item_plans: List[ItemPlan], stats) -> None:
    """Pin ``est_rows`` onto every operator of every item plan."""
    for item_plan in item_plans:
        _estimate_op(item_plan.op, stats)


def _estimate_op(op: PlanOp, stats) -> Optional[float]:
    """Estimate one operator's output rows (children first); None means
    the planner has no basis (lateral join, statistics-free source)."""
    from repro.catalog.statistics import source_name

    feedback = getattr(stats, "feedback_rows", None)
    estimate: Optional[float] = None
    if isinstance(op, EmptyOp):
        # A statically-proven empty pipeline: the one operator whose
        # estimate is exact and allowed to be zero.
        op.est_rows = 0.0
        return 0.0
    if isinstance(op, ScanOp):
        if isinstance(op.item, ast.FromCollection):
            name = source_name(op.item.expr)
            collected = stats.stats_for(name) if name is not None else None
            if collected is not None:
                estimate = float(collected.row_count)
                for predicate in op.filters:
                    estimate *= _selectivity(
                        predicate, op.item.alias, collected
                    )
                estimate = max(estimate, 1.0)
            if feedback is not None:
                hint = feedback(scan_feedback_key(op))
                if hint is not None:
                    estimate = max(float(hint), 1.0)
                    op.est_source = "feedback"
    elif isinstance(op, HashJoinOp):
        left = _estimate_op(op.left, stats)
        right = _estimate_op(op.right, stats)
        if left is not None and right is not None:
            divisor = _key_divisor(op, stats)
            if divisor is None:
                # ndv unknown on both sides: |A⋈B| ≈ min(|A|,|B|).
                estimate = max(min(left, right), 1.0)
            else:
                estimate = left * right / divisor
            if op.kind == "LEFT":
                estimate = max(estimate, left)
            for _ in list(op.residual) + list(op.filters):
                estimate *= 0.5
            estimate = max(estimate, 1.0)
        if feedback is not None:
            hint = feedback(join_feedback_key(op))
            if hint is not None:
                estimate = max(float(hint), 1.0)
                op.est_source = "feedback"
    elif isinstance(op, MaterializeJoinOp):
        left = _estimate_op(op.left, stats)
        right = _estimate_op(op.right, stats)
        if left is not None and right is not None:
            estimate = left * right
            if op.on is not None:
                estimate *= 0.5
            if op.kind == "LEFT":
                estimate = max(estimate, left)
            for _ in op.filters:
                estimate *= 0.5
            estimate = max(estimate, 1.0)
    elif isinstance(op, CorrelatedJoinOp):
        # The lateral right side re-evaluates per left binding; without
        # per-binding statistics no honest estimate exists (est=?).
        _estimate_op(op.left, stats)
    op.est_rows = estimate
    return estimate


def _key_divisor(op: HashJoinOp, stats) -> Optional[float]:
    """The largest ndv among the join's resolvable key attributes."""
    from repro.catalog.statistics import source_name

    best: Optional[float] = None
    for side, keys in ((op.left, op.left_keys), (op.right, op.right_keys)):
        scans = {
            scan.item.alias: scan
            for scan in _scan_ops(side)
            if isinstance(scan.item, ast.FromCollection)
        }
        for key in keys:
            attr = _key_attr(key)
            if attr is None or not isinstance(key.base, ast.VarRef):
                continue
            scan = scans.get(key.base.name)
            if scan is None:
                continue
            name = source_name(scan.item.expr)
            collected = stats.stats_for(name) if name is not None else None
            if collected is None:
                continue
            ndv = collected.ndv_for(attr)
            if ndv:
                best = max(best or 1.0, float(ndv))
    return best


def _worst_misestimate(items: List[ItemPlan], tracer) -> Optional[int]:
    """``id()`` of the operator with the largest q-error, or None.

    Only misestimates of at least 2× get flagged — an accurate plan's
    best-of-a-good-bunch is not worth an arrow."""
    from repro.observability.tracer import q_error

    worst_id: Optional[int] = None
    worst_q = 2.0
    for item_plan in items:
        for op in walk_plan_ops(item_plan.op):
            estimate = getattr(op, "est_rows", None)
            if estimate is None:
                continue
            stats = tracer.op_stats(op)
            if stats is None:
                continue
            q = q_error(estimate, stats.rows_out)
            if q >= worst_q:
                worst_q = q
                worst_id = id(op)
    return worst_id
