"""The paper's Listings 1–28 as conformance cases.

Data listings register as round-trip cases (querying the named value
returns the literal); query listings register with their printed result,
or with the result derived from the paper's pseudocode/prose when the
paper does not print one.  Where the paper's printed text is internally
loose, the case notes say so:

* Listing 13 prints ``'OLTP Security'`` capitalised although the query
  groups by ``LOWER(p)``; the kit expects the lower-cased value the
  query actually produces.
* Listing 11 prints attribute names ``name``/``title`` although Listing
  10 aliases them ``emp_name``/``emp_title``; the kit follows the query.
* Listing 3 elides Susan's and Jane's tuples; the kit completes them
  consistently with Listings 11 and 13 (Susan: no projects; Jane:
  ``['OLAP Security']``).
* Listing 18 is labelled "Core version" but its inner subquery uses the
  sugar ``SELECT gi.e.salary``; it therefore runs under the
  SQL-compatibility flag, where that subquery coerces to a collection.
* The paper's ``hr.emp`` (Listings 15-18, 4 columns, contents unprinted)
  is instantiated as a small fixed sample; expected aggregates are
  computed from it.
"""

from __future__ import annotations

from repro.compat.corpus import ConformanceCase, register

# =========================================================================
# Shared input collections
# =========================================================================

EMP_NEST_TUPLES = """
{{
  {
    'id': 3,
    'name': 'Bob Smith',
    'title': null,
    'projects': [
      {'name': 'Serverless Query'},
      {'name': 'OLAP Security'},
      {'name': 'OLTP Security'}
    ]
  },
  {
    'id': 4,
    'name': 'Susan Smith',
    'title': 'Manager',
    'projects': []
  },
  {
    'id': 6,
    'name': 'Jane Smith',
    'title': 'Engineer',
    'projects': [
      {'name': 'OLTP Security'}
    ]
  }
}}
"""

EMP_NEST_SCALARS = """
{{
  {
    'id': 3,
    'name': 'Bob Smith',
    'title': null,
    'projects': [
      'Serverless Querying',
      'OLAP Security',
      'OLTP Security'
    ]
  },
  {
    'id': 4,
    'name': 'Susan Smith',
    'title': 'Manager',
    'projects': []
  },
  {
    'id': 6,
    'name': 'Jane Smith',
    'title': 'Engineer',
    'projects': [
      'OLAP Security'
    ]
  }
}}
"""

EMP_NULL = """
{{
  {'id': 3, 'name': 'Bob Smith',   'title': null},
  {'id': 4, 'name': 'Susan Smith', 'title': 'Manager'},
  {'id': 6, 'name': 'Jane Smith',  'title': 'Engineer'}
}}
"""

EMP_MISSING = """
{{
  {'id': 3, 'name': 'Bob Smith'},
  {'id': 4, 'name': 'Susan Smith', 'title': 'Manager'},
  {'id': 6, 'name': 'Jane Smith',  'title': 'Engineer'}
}}
"""

#: The flat hr.emp of Sections V-C; the paper leaves its rows unprinted.
HR_EMP = """
{{
  {'name': 'Alice', 'deptno': 1, 'title': 'Engineer', 'salary': 100000},
  {'name': 'Bob',   'deptno': 1, 'title': 'Engineer', 'salary': 90000},
  {'name': 'Carol', 'deptno': 2, 'title': 'Engineer', 'salary': 110000},
  {'name': 'Dave',  'deptno': 2, 'title': 'Manager',  'salary': 130000},
  {'name': 'Erin',  'deptno': 3, 'title': 'Manager',  'salary': 120000}
}}
"""

CLOSING_PRICES = """
{{
  {'date': '4/1/2019', 'amzn': 1900, 'goog': 1120, 'fb': 180},
  {'date': '4/2/2019', 'amzn': 1902, 'goog': 1119, 'fb': 183}
}}
"""

TODAY_STOCK_PRICES = """
{{
  {'symbol': 'amzn', 'price': 1900},
  {'symbol': 'goog', 'price': 1120},
  {'symbol': 'fb',   'price': 180}
}}
"""

STOCK_PRICES = """
{{
  {'date': '4/1/2019', 'symbol': 'amzn', 'price': 1900},
  {'date': '4/1/2019', 'symbol': 'goog', 'price': 1120},
  {'date': '4/1/2019', 'symbol': 'fb',   'price': 180},
  {'date': '4/2/2019', 'symbol': 'amzn', 'price': 1902},
  {'date': '4/2/2019', 'symbol': 'goog', 'price': 1119},
  {'date': '4/2/2019', 'symbol': 'fb',   'price': 183}
}}
"""

#: Heterogeneous projects attribute, the data shape of Listing 5's
#: ``UNIONTYPE<STRING, ARRAY<STRING>>``.
EMP_MIXED = """
{{
  {'id': 1, 'name': 'Uma',  'title': 'Engineer', 'projects': 'OLTP Security'},
  {'id': 2, 'name': 'Vic',  'title': 'Engineer',
   'projects': ['OLAP Security', 'Serverless Querying']},
  {'id': 3, 'name': 'Wei',  'title': 'Manager',  'projects': []}
}}
"""

# =========================================================================
# Data listings: the literal notation round-trips (Section II)
# =========================================================================


def _data_case(case_id: str, section: str, title: str, name: str, literal: str):
    register(
        ConformanceCase(
            case_id=case_id,
            section=section,
            title=title,
            data={name: literal},
            query=name,
            expected=literal,
        )
    )


_data_case(
    "L1", "II", "hr.emp_nest_tuples collection", "hr.emp_nest_tuples", EMP_NEST_TUPLES
)
_data_case(
    "L3",
    "III-A",
    "hr.emp_nest_scalars collection",
    "hr.emp_nest_scalars",
    EMP_NEST_SCALARS,
)
_data_case("L6", "IV-A", "hr.emp_null collection (NULL title)", "hr.emp_null", EMP_NULL)
_data_case(
    "L7",
    "IV-A",
    "hr.emp_missing collection (absent title)",
    "hr.emp_missing",
    EMP_MISSING,
)
_data_case("L19", "VI-A", "closing_prices collection", "closing_prices", CLOSING_PRICES)
_data_case(
    "L23",
    "VI-B",
    "today_stock_prices collection",
    "today_stock_prices",
    TODAY_STOCK_PRICES,
)
_data_case("L27", "VI-B", "stock_prices collection", "stock_prices", STOCK_PRICES)

# =========================================================================
# Section III — accessing nested data
# =========================================================================

register(
    ConformanceCase(
        case_id="L2",
        section="III",
        title="Left-correlated FROM over nested tuples",
        data={"hr.emp_nest_tuples": EMP_NEST_TUPLES},
        query="""
            SELECT e.name AS emp_name,
                   p.name AS proj_name
            FROM hr.emp_nest_tuples AS e,
                 e.projects AS p
            WHERE p.name LIKE '%Security%'
        """,
        expected="""
            {{
              {'emp_name': 'Bob Smith',  'proj_name': 'OLAP Security'},
              {'emp_name': 'Bob Smith',  'proj_name': 'OLTP Security'},
              {'emp_name': 'Jane Smith', 'proj_name': 'OLTP Security'}
            }}
        """,
        notes="Expected rows derived from Pseudocode 1.",
    )
)

register(
    ConformanceCase(
        case_id="L2-core",
        section="III",
        title="Listing 2 under the composability (Core) mode",
        data={"hr.emp_nest_tuples": EMP_NEST_TUPLES},
        query="""
            SELECT e.name AS emp_name, p.name AS proj_name
            FROM hr.emp_nest_tuples AS e, e.projects AS p
            WHERE p.name LIKE '%Security%'
        """,
        expected="""
            {{
              {'emp_name': 'Bob Smith',  'proj_name': 'OLAP Security'},
              {'emp_name': 'Bob Smith',  'proj_name': 'OLTP Security'},
              {'emp_name': 'Jane Smith', 'proj_name': 'OLTP Security'}
            }}
        """,
        sql_compat=False,
        notes="SELECT-list sugar means the same SELECT VALUE in both modes.",
    )
)

register(
    ConformanceCase(
        case_id="L4",
        section="III-A",
        title="FROM variables bind to scalars, not just tuples",
        data={"hr.emp_nest_scalars": EMP_NEST_SCALARS},
        query="""
            SELECT e.name AS emp_name,
                   p AS proj_name
            FROM hr.emp_nest_scalars AS e,
                 e.projects AS p
            WHERE p LIKE '%Security%'
        """,
        expected="""
            {{
              {'emp_name': 'Bob Smith',  'proj_name': 'OLAP Security'},
              {'emp_name': 'Bob Smith',  'proj_name': 'OLTP Security'},
              {'emp_name': 'Jane Smith', 'proj_name': 'OLAP Security'}
            }}
        """,
        notes="Expected rows derived from Pseudocode 2.",
    )
)

# =========================================================================
# Section IV — absence of schema, MISSING
# =========================================================================

register(
    ConformanceCase(
        case_id="L5",
        section="IV",
        title="Heterogeneous attribute (Hive UNIONTYPE shape) stays queryable",
        data={"hr.emp_mixed": EMP_MIXED},
        query="SELECT VALUE e.projects FROM hr.emp_mixed AS e",
        expected="""
            {{ 'OLTP Security', ['OLAP Security', 'Serverless Querying'], [] }}
        """,
        notes=(
            "Listing 5 is a Hive DDL; its UNIONTYPE schema is exercised by "
            "the schema test suite, this case checks the data shape itself."
        ),
    )
)

register(
    ConformanceCase(
        case_id="L8",
        section="IV-B",
        title="Navigation into a missing attribute yields MISSING; "
        "WHERE drops the binding",
        data={"hr.emp_missing": EMP_MISSING},
        query="""
            SELECT e.id,
                   e.name AS emp_name,
                   e.title AS title
            FROM hr.emp_missing AS e
            WHERE e.title = 'Manager'
        """,
        expected="{{ {'id': 4, 'emp_name': 'Susan Smith', 'title': 'Manager'} }}",
        notes="Bob's tuple has no title: e.title is MISSING, the comparison "
        "is MISSING, the WHERE keeps only TRUE.",
    )
)

register(
    ConformanceCase(
        case_id="L9",
        section="IV-B",
        title="CASE over MISSING propagates MISSING (Core mode); output "
        "tuple omits the attribute",
        data={"hr.emp_missing": EMP_MISSING},
        query="""
            SELECT e.id,
                   e.name AS emp_name,
                   CASE WHEN e.title LIKE 'Chief %'
                        THEN 'Executive'
                        ELSE 'Worker'
                   END AS category
            FROM hr.emp_missing AS e
        """,
        expected="""
            {{
              {'id': 3, 'emp_name': 'Bob Smith'},
              {'id': 4, 'emp_name': 'Susan Smith', 'category': 'Worker'},
              {'id': 6, 'emp_name': 'Jane Smith',  'category': 'Worker'}
            }}
        """,
        sql_compat=False,
        notes="Rule 3 of Section IV-B: the CASE operator propagates a "
        "MISSING input, and a MISSING attribute value is omitted.",
    )
)

register(
    ConformanceCase(
        case_id="L9-compat",
        section="IV-B",
        title="The same CASE under SQL-compatibility mode behaves like "
        "SQL's CASE WHEN NULL",
        data={"hr.emp_missing": EMP_MISSING},
        query="""
            SELECT e.id,
                   e.name AS emp_name,
                   CASE WHEN e.title LIKE 'Chief %'
                        THEN 'Executive'
                        ELSE 'Worker'
                   END AS category
            FROM hr.emp_missing AS e
        """,
        expected="""
            {{
              {'id': 3, 'emp_name': 'Bob Smith',   'category': 'Worker'},
              {'id': 4, 'emp_name': 'Susan Smith', 'category': 'Worker'},
              {'id': 6, 'emp_name': 'Jane Smith',  'category': 'Worker'}
            }}
        """,
        sql_compat=True,
        notes="Section IV-B exception: SQL's CASE WHEN NULL falls through "
        "to ELSE, so MISSING must too in compatibility mode.",
    )
)

# =========================================================================
# Section V — result construction, nesting, grouping, aggregation
# =========================================================================

register(
    ConformanceCase(
        case_id="L10",
        section="V-A",
        title="Nested SELECT VALUE subquery in the SELECT clause",
        data={"hr.emp_nest_scalars": EMP_NEST_SCALARS},
        query="""
            SELECT e.id AS id,
                   e.name AS emp_name,
                   e.title AS emp_title,
                   ( SELECT VALUE p
                     FROM e.projects AS p
                     WHERE p LIKE '%Security%'
                   ) AS security_proj
            FROM hr.emp_nest_scalars AS e
        """,
        expected="""
            {{
              {'id': 3, 'emp_name': 'Bob Smith', 'emp_title': null,
               'security_proj': {{'OLAP Security', 'OLTP Security'}}},
              {'id': 4, 'emp_name': 'Susan Smith', 'emp_title': 'Manager',
               'security_proj': {{}}},
              {'id': 6, 'emp_name': 'Jane Smith', 'emp_title': 'Engineer',
               'security_proj': {{'OLAP Security'}}}
            }}
        """,
        notes="Listing 11 prints attributes name/title although Listing 10 "
        "aliases them emp_name/emp_title; the kit follows the query.",
    )
)

register(
    ConformanceCase(
        case_id="L12",
        section="V-B",
        title="GROUP BY ... GROUP AS with SELECT-clause-last style",
        data={"hr.emp_nest_scalars": EMP_NEST_SCALARS},
        query="""
            FROM hr.emp_nest_scalars AS e, e.projects AS p
            WHERE p LIKE '%Security%'
            GROUP BY LOWER(p) AS p GROUP AS g
            SELECT p AS proj_name,
                   (FROM g AS v
                    SELECT VALUE v.e.name) AS employees
        """,
        expected="""
            {{
              {'proj_name': 'oltp security',
               'employees': {{'Bob Smith'}}},
              {'proj_name': 'olap security',
               'employees': {{'Bob Smith', 'Jane Smith'}}}
            }}
        """,
        notes="Listing 13 prints the project names capitalised although the "
        "query groups by LOWER(p); the kit expects the lower-cased values.",
    )
)

register(
    ConformanceCase(
        case_id="L14",
        section="V-B",
        title="The GROUP BY ... GROUP AS output bindings themselves",
        data={"hr.emp_nest_scalars": EMP_NEST_SCALARS},
        query="""
            FROM hr.emp_nest_scalars AS e, e.projects AS p
            WHERE p LIKE '%Security%'
            GROUP BY LOWER(p) AS p GROUP AS g
            SELECT VALUE {'p': p, 'g': g}
        """,
        expected="""
            {{
              {
                'p': 'olap security',
                'g': {{
                  { 'e': {'id': 3, 'name': 'Bob Smith', 'title': null,
                          'projects': ['Serverless Querying',
                                       'OLAP Security', 'OLTP Security']},
                    'p': 'OLAP Security' },
                  { 'e': {'id': 6, 'name': 'Jane Smith', 'title': 'Engineer',
                          'projects': ['OLAP Security']},
                    'p': 'OLAP Security' }
                }}
              },
              {
                'p': 'oltp security',
                'g': {{
                  { 'e': {'id': 3, 'name': 'Bob Smith', 'title': null,
                          'projects': ['Serverless Querying',
                                       'OLAP Security', 'OLTP Security']},
                    'p': 'OLTP Security' }
                }}
              }
            }}
        """,
        notes="Materialises Listing 14's p/g bindings: each group element "
        "is a tuple of the FROM variables e and p.",
    )
)

register(
    ConformanceCase(
        case_id="L15",
        section="V-C",
        title="SQL aggregation without GROUP BY (implicit single group)",
        data={"hr.emp": HR_EMP},
        query="""
            SELECT AVG(e.salary) AS avgsal
            FROM hr.emp AS e
            WHERE e.title = 'Engineer'
        """,
        expected="{{ {'avgsal': 100000.0} }}",
    )
)

register(
    ConformanceCase(
        case_id="L16",
        section="V-C",
        title="The SQL++ Core equivalent of Listing 15 (COLL_AVG)",
        data={"hr.emp": HR_EMP},
        query="""
            {{
              {'avgsal':
                COLL_AVG(
                  SELECT VALUE e.salary
                  FROM hr.emp AS e
                  WHERE e.title = 'Engineer'
                )
              }
            }}
        """,
        expected="{{ {'avgsal': 100000.0} }}",
        sql_compat=False,
        notes="Fully composable: COLL_AVG over a SELECT VALUE subquery, no "
        "coercion involved, so the Core mode runs it as written.",
    )
)

register(
    ConformanceCase(
        case_id="L17",
        section="V-C",
        title="Grouped SQL aggregation",
        data={"hr.emp": HR_EMP},
        query="""
            SELECT e.deptno, AVG(e.salary) AS avgsal
            FROM hr.emp AS e
            WHERE e.title = 'Engineer'
            GROUP BY e.deptno
        """,
        expected="""
            {{
              {'deptno': 1, 'avgsal': 95000.0},
              {'deptno': 2, 'avgsal': 110000.0}
            }}
        """,
    )
)

register(
    ConformanceCase(
        case_id="L18",
        section="V-C",
        title="The SQL++ Core equivalent of Listing 17 (GROUP AS + COLL_AVG)",
        data={"hr.emp": HR_EMP},
        query="""
            FROM hr.emp AS e
            WHERE e.title = 'Engineer'
            GROUP BY e.deptno AS d GROUP AS g
            SELECT VALUE
              {deptno: d,
               avgsal: COLL_AVG(
                 FROM g AS gi
                 SELECT gi.e.salary
               )
              }
        """,
        expected="""
            {{
              {'deptno': 1, 'avgsal': 95000.0},
              {'deptno': 2, 'avgsal': 110000.0}
            }}
        """,
        sql_compat=True,
        notes="The paper labels this 'Core version' but the inner subquery "
        "uses the sugar SELECT, which needs the compatibility mode's "
        "collection coercion inside COLL_AVG.",
    )
)

# =========================================================================
# Section VI — pivoting and unpivoting
# =========================================================================

register(
    ConformanceCase(
        case_id="L20",
        section="VI-A",
        title="UNPIVOT turns attribute names into data",
        data={"closing_prices": CLOSING_PRICES},
        query="""
            SELECT c."date" AS "date",
                   sym AS symbol,
                   price AS price
            FROM closing_prices AS c,
                 UNPIVOT c AS price AT sym
            WHERE NOT sym = 'date'
        """,
        expected="""
            {{
              {'date': '4/1/2019', 'symbol': 'amzn', 'price': 1900},
              {'date': '4/1/2019', 'symbol': 'goog', 'price': 1120},
              {'date': '4/1/2019', 'symbol': 'fb',   'price': 180},
              {'date': '4/2/2019', 'symbol': 'amzn', 'price': 1902},
              {'date': '4/2/2019', 'symbol': 'goog', 'price': 1119},
              {'date': '4/2/2019', 'symbol': 'fb',   'price': 183}
            }}
        """,
        notes="Expected result is Listing 21 verbatim.",
    )
)

register(
    ConformanceCase(
        case_id="L22",
        section="VI-A",
        title="Average stock price per symbol via UNPIVOT + GROUP BY",
        data={"closing_prices": CLOSING_PRICES},
        query="""
            SELECT sym AS symbol,
                   AVG(price) AS avg_price
            FROM closing_prices c,
                 UNPIVOT c AS price AT sym
            WHERE NOT sym = 'date'
            GROUP BY sym
        """,
        expected="""
            {{
              {'symbol': 'amzn', 'avg_price': 1901.0},
              {'symbol': 'goog', 'avg_price': 1119.5},
              {'symbol': 'fb',   'avg_price': 181.5}
            }}
        """,
        notes="Averages computed from Listing 19's data.",
    )
)

register(
    ConformanceCase(
        case_id="L24",
        section="VI-B",
        title="PIVOT turns a collection into a tuple",
        data={"today_stock_prices": TODAY_STOCK_PRICES},
        query="""
            PIVOT sp.price AT sp.symbol
            FROM today_stock_prices sp
        """,
        expected="{'amzn': 1900, 'goog': 1120, 'fb': 180}",
        notes="Expected result is Listing 25 verbatim; note the query "
        "result is a single tuple, not a collection.",
    )
)

register(
    ConformanceCase(
        case_id="L26",
        section="VI-B",
        title="Grouping combined with PIVOT",
        data={"stock_prices": STOCK_PRICES},
        query="""
            SELECT sp."date" AS "date",
                   (PIVOT dp.sp.price AT dp.sp.symbol
                    FROM dates_prices AS dp) AS prices
            FROM stock_prices AS sp
            GROUP BY sp."date" GROUP AS dates_prices
        """,
        expected="""
            {{
              {'date': '4/1/2019',
               'prices': {'amzn': 1900, 'goog': 1120, 'fb': 180}},
              {'date': '4/2/2019',
               'prices': {'amzn': 1902, 'goog': 1119, 'fb': 183}}
            }}
        """,
        notes="Expected result is Listing 28 verbatim.",
    )
)
