"""Property-based checks of the paper's stated guarantees.

* Section IV-B: for a working SQL query q over data d with nulls, and d′
  where some nulls became missing attributes, q(d′) = q(d) modulo
  null-valued attributes being absent.
* Section V-C: the SQL aggregate sugar is equivalent to the explicit
  COLL_* + GROUP AS Core form.
* Section VI: PIVOT and UNPIVOT are mutually inverse on tuple-shaped
  data.
* Tenet 1: a SQL query gives the same result on the SQL++ engine as on
  the strict SQL-92 baseline.
"""

from hypothesis import given, settings, strategies as st

from repro import Database
from repro.baselines.sql92 import SQL92Database
from repro.datamodel.convert import from_python
from repro.datamodel.equality import deep_equals
from repro.datamodel.values import Bag, Struct
from repro.workloads.generators import null_to_missing

# Rows with a potentially-null 'title' and always-present id/salary.
rows_strategy = st.lists(
    st.builds(
        lambda i, title, salary: {"id": i, "title": title, "salary": salary},
        st.integers(0, 50),
        st.one_of(st.none(), st.sampled_from(["Engineer", "Manager", "Chief X"])),
        st.integers(0, 10),
    ),
    max_size=12,
)

GUARANTEE_QUERIES = [
    "SELECT e.id, e.title AS title FROM d AS e",
    "SELECT e.id FROM d AS e WHERE e.title = 'Manager'",
    "SELECT e.title AS t, COUNT(*) AS n FROM d AS e GROUP BY e.title",
    "SELECT e.id, CASE WHEN e.title LIKE 'Chief %' THEN 'E' ELSE 'W' END AS c "
    "FROM d AS e",
    "SELECT e.id, COALESCE(e.title, 'none') AS t FROM d AS e",
]


def strip_nulls(value):
    """Erase null-valued attributes recursively (the q(d) side of the
    Section IV-B comparison)."""
    if isinstance(value, Struct):
        return Struct(
            [
                (name, strip_nulls(item))
                for name, item in value.items()
                if item is not None
            ]
        )
    if isinstance(value, Bag):
        return Bag(strip_nulls(item) for item in value)
    if isinstance(value, list):
        return [strip_nulls(item) for item in value]
    return value


@given(rows_strategy, st.sampled_from(GUARANTEE_QUERIES))
@settings(max_examples=60, deadline=None)
def test_null_to_missing_guarantee(rows, query):
    db_null = Database()
    db_null.set("d", rows)
    db_missing = Database()
    db_missing.set("d", null_to_missing(rows))

    result_null = db_null.execute(query)
    result_missing = db_missing.execute(query)
    # Grouping keys differ (null vs missing key values group apart is NOT
    # allowed — both group as one absent group under our group_key? null
    # and missing have distinct keys). The guarantee as stated concerns
    # attribute values; for the GROUP BY query compare after stripping.
    assert deep_equals(strip_nulls(result_null), strip_nulls(result_missing))


agg_rows = st.lists(
    st.builds(
        lambda d, s: {"deptno": d, "salary": s},
        st.integers(1, 3),
        st.integers(0, 100),
    ),
    min_size=1,
    max_size=15,
)


@given(agg_rows)
@settings(max_examples=50, deadline=None)
def test_aggregate_sugar_equals_core_form(rows):
    db = Database()
    db.set("emp", rows)
    sugar = db.execute(
        "SELECT e.deptno, AVG(e.salary) AS avgsal, COUNT(*) AS n "
        "FROM emp AS e GROUP BY e.deptno"
    )
    core = db.execute(
        "FROM emp AS e GROUP BY e.deptno AS d GROUP AS g "
        "SELECT VALUE {deptno: d, "
        " avgsal: COLL_AVG(SELECT VALUE gi.e.salary FROM g AS gi), "
        " n: COLL_COUNT(SELECT VALUE 1 FROM g AS gi)}",
        sql_compat=False,
    )
    assert deep_equals(sugar, core)


pivot_rows = st.dictionaries(
    st.from_regex(r"[a-z]{1,5}", fullmatch=True),
    st.integers(0, 10**6),
    min_size=0,
    max_size=8,
)


@given(pivot_rows)
@settings(max_examples=60, deadline=None)
def test_unpivot_then_pivot_is_identity(mapping):
    db = Database()
    db.set("t", mapping)
    result = db.execute(
        "PIVOT v AT a FROM UNPIVOT t AS v AT a"
    )
    assert deep_equals(result, from_python(mapping))


@given(st.lists(st.tuples(st.from_regex(r"[a-z]{1,4}", fullmatch=True),
                          st.integers(0, 100)),
                unique_by=lambda pair: pair[0], max_size=6))
@settings(max_examples=60, deadline=None)
def test_pivot_then_unpivot_is_identity(pairs):
    db = Database()
    db.set("prices", [{"s": name, "p": price} for name, price in pairs])
    result = db.execute(
        "SELECT a AS s, v AS p FROM "
        "(PIVOT r.p AT r.s FROM prices AS r) AS c, UNPIVOT c AS v AT a"
    )
    expected = from_python([{"s": name, "p": price} for name, price in pairs])
    assert deep_equals(Bag(list(result)), Bag(expected))


sql_rows = st.lists(
    st.builds(
        lambda i, d, s: {"id": i, "deptno": d, "salary": s},
        st.integers(0, 30),
        st.integers(1, 3),
        st.one_of(st.none(), st.integers(0, 100)),
    ),
    max_size=12,
)

SQL_QUERIES = [
    "SELECT e.id, e.salary FROM emp AS e WHERE e.salary > 40",
    "SELECT e.deptno, COUNT(*) AS n, AVG(e.salary) AS a "
    "FROM emp AS e GROUP BY e.deptno",
    "SELECT e.id FROM emp AS e WHERE e.salary IS NULL",
    "SELECT DISTINCT e.deptno FROM emp AS e",
    "SELECT e.id FROM emp AS e WHERE e.salary BETWEEN 20 AND 60",
]


@given(sql_rows, st.sampled_from(SQL_QUERIES))
@settings(max_examples=60, deadline=None)
def test_sql_compatibility_oracle(rows, query):
    """Tenet 1: identical SQL, identical answers, on both engines."""
    sql92 = SQL92Database()
    sql92.create_table("emp", ["id", "deptno", "salary"])
    sql92.insert("emp", rows)

    sqlpp = Database()
    sqlpp.set("emp", rows)

    baseline = Bag(from_python(sql92.execute(query)))
    ours = sqlpp.execute(query)
    assert deep_equals(Bag(list(ours)), baseline)
