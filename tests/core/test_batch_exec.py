"""The batch (chunk-vectorized) executor: eligibility, parity with the
streaming and reference pipelines, aggregate decomposition, statistics
in EXPLAIN, and evaluator memoization (docs/PLANNER.md "Batch
execution").
"""

from __future__ import annotations

import pytest

from repro import Database, errors
from repro.core.vectorized import decompose_block
from repro.datamodel.equality import deep_equals
from repro.datamodel.values import Bag


def three_ways(db: Database, query: str, ordered: bool = False, **kwargs):
    """Run batch, streaming-only and reference; assert 3-way parity."""
    batch = db.execute(query, **kwargs)
    streaming = db.execute(query, batch=False, **kwargs)
    reference = db.execute(query, optimize=False, **kwargs)
    if ordered:
        assert deep_equals(list(batch), list(streaming))
        assert deep_equals(list(batch), list(reference))
    else:
        first = Bag(list(batch)) if isinstance(batch, (list, Bag)) else batch
        for other in (streaming, reference):
            other = Bag(list(other)) if isinstance(other, (list, Bag)) else other
            assert deep_equals(first, other), f"parity violation for {query!r}"
    return batch


@pytest.fixture
def db() -> Database:
    db = Database()
    db.set(
        "orders",
        [
            {"oid": i, "cust": i % 7, "total": (i * 13) % 100, "open": i % 2 == 0}
            for i in range(50)
        ],
    )
    db.set("custs", [{"cid": i, "name": f"c{i}"} for i in range(7)])
    return db


class TestBatchedFlag:
    def test_eligible_query_sets_both_flags(self, db):
        db.execute("SELECT VALUE o.oid FROM orders AS o WHERE o.total > 10")
        assert db.metrics.last.batched is True
        assert db.metrics.last.streamed is True

    def test_batch_false_disables(self, db):
        db.execute(
            "SELECT VALUE o.oid FROM orders AS o WHERE o.total > 10",
            batch=False,
        )
        assert db.metrics.last.batched is False
        assert db.metrics.last.streamed is True

    def test_reference_path_never_batches(self, db):
        db.execute("SELECT VALUE o.oid FROM orders AS o", optimize=False)
        assert db.metrics.last.batched is False

    def test_limit_stays_streaming(self, db):
        # Bounded consumers (top-K, early termination) belong to the
        # streaming pipeline; batch must decline.
        db.execute("SELECT VALUE o.oid FROM orders AS o LIMIT 3")
        assert db.metrics.last.batched is False
        assert db.metrics.last.streamed is True

    def test_strict_mode_stays_streaming(self, db):
        db.execute(
            "SELECT VALUE o.oid FROM orders AS o", typing_mode="strict"
        )
        assert db.metrics.last.batched is False

    def test_comma_join_plans_two_items_and_streams(self, db):
        # A comma join keeps two plan items (no ON clause to hash on);
        # the chunk protocol drives exactly one operator tree.
        db.execute(
            "SELECT VALUE {'o': o.oid, 'c': c.name} "
            "FROM orders AS o, custs AS c WHERE o.cust = c.cid"
        )
        assert db.metrics.last.batched is False
        assert db.metrics.last.streamed is True


class TestBatchParity:
    def test_filter_project(self, db):
        three_ways(
            db,
            "SELECT o.oid AS oid, o.total * 2 AS dbl "
            "FROM orders AS o WHERE o.total >= 50 AND o.open",
        )

    def test_let_chain(self, db):
        three_ways(
            db,
            "SELECT VALUE t + u FROM orders AS o "
            "LET t = o.total + 1, u = t * 2 WHERE u < 150",
        )

    def test_select_star(self, db):
        three_ways(db, "SELECT * FROM orders AS o WHERE o.oid < 5")

    def test_distinct(self, db):
        three_ways(db, "SELECT DISTINCT o.cust AS cust FROM orders AS o")

    def test_order_by_is_order_exact(self, db):
        three_ways(
            db,
            "SELECT o.oid AS oid FROM orders AS o "
            "WHERE o.total > 20 ORDER BY o.total DESC, o.oid",
            ordered=True,
        )

    def test_group_by_aggregates_and_having(self, db):
        three_ways(
            db,
            "SELECT c, COUNT(*) AS n, SUM(o.total) AS spend, "
            "AVG(o.total) AS mean, MIN(o.total) AS low, MAX(o.total) AS top "
            "FROM orders AS o GROUP BY o.cust AS c HAVING COUNT(*) > 2",
        )

    def test_group_by_distinct_aggregate(self, db):
        three_ways(
            db,
            "SELECT c, COUNT(DISTINCT o.total) AS n "
            "FROM orders AS o GROUP BY o.cust AS c",
        )

    def test_group_as_stays_correct(self, db):
        # GROUP AS makes the whole group visible — not decomposable into
        # per-morsel folds, so the batch path takes the semi-batch route
        # through the streaming group operator.
        three_ways(
            db,
            "SELECT c, (SELECT VALUE g.o.oid FROM g AS g) AS oids "
            "FROM orders AS o GROUP BY o.cust AS c GROUP AS g",
        )

    def test_hash_join(self, db):
        three_ways(
            db,
            "SELECT o.oid AS oid, c.name AS name FROM orders AS o "
            "JOIN custs AS c ON o.cust = c.cid WHERE o.total > 30",
        )

    def test_left_join_pads_missing(self, db):
        db.set("custs_small", [{"cid": 0, "name": "only"}])
        three_ways(
            db,
            "SELECT o.oid AS oid, c.name AS name FROM orders AS o "
            "LEFT JOIN custs_small AS c ON o.cust = c.cid",
        )

    def test_chunk_boundary_sizes(self):
        # 1023 / 1024 / 1025 rows: off-by-one at the chunk boundary.
        db = Database()
        for n in (1023, 1024, 1025):
            db.set("t", [{"x": i} for i in range(n)])
            result = db.execute("SELECT VALUE t.x FROM t AS t WHERE t.x >= 1")
            assert db.metrics.last.batched is True
            assert len(list(result)) == n - 1

    def test_errors_match_streaming(self):
        db = Database(max_rows=10)
        db.set("t", [{"x": i} for i in range(100)])
        with pytest.raises(errors.ResourceExhausted):
            db.execute("SELECT VALUE t.x FROM t AS t")


class TestDecomposition:
    def core(self, db, query):
        return db.compile(query).body

    def test_simple_aggregates_decompose(self, db):
        block = self.core(
            db,
            "SELECT c, COUNT(*) AS n, AVG(o.total) AS mean "
            "FROM orders AS o GROUP BY o.cust AS c",
        )
        decomp = decompose_block(block, ("o",))
        assert decomp is not None
        assert len(decomp.specs) == 2
        assert [spec.distinct for spec in decomp.specs] == [False, False]

    def test_group_as_reference_declines(self, db):
        block = self.core(
            db,
            "SELECT c, (SELECT VALUE g.o.oid FROM g AS g) AS oids "
            "FROM orders AS o GROUP BY o.cust AS c GROUP AS g",
        )
        assert decompose_block(block, ("o",)) is None

    def test_rollup_declines(self, db):
        block = self.core(
            db,
            "SELECT o.cust AS c, COUNT(*) AS n FROM orders AS o "
            "GROUP BY ROLLUP (o.cust, o.open)",
        )
        assert decompose_block(block, ("o",)) is None


class TestExplainSurfaces:
    def test_stats_line_per_scanned_collection(self, db):
        plan = db.explain_plan(
            "SELECT VALUE o.oid FROM orders AS o "
            "JOIN custs AS c ON o.cust = c.cid"
        )
        assert "stats: orders: rows=50" in plan
        assert "stats: custs: rows=7" in plan

    def test_order_line_syntactic_when_unchanged(self, db):
        plan = db.explain_plan(
            "SELECT VALUE o.oid FROM orders AS o "
            "JOIN custs AS c ON o.cust = c.cid"
        )
        assert "order: o ⋈ c (syntactic)" in plan

    def test_cost_based_reorder_probes_the_big_side(self):
        # Syntactic order probes the small side; with statistics the
        # planner flips the join so the big side streams through the
        # probe and the small side is built.
        db = Database()
        db.set("small", [{"k": i} for i in range(8)])
        db.set("big", [{"k": i % 8, "v": i} for i in range(4_000)])
        query = (
            "SELECT VALUE {'k': s.k, 'v': b.v} FROM small AS s "
            "JOIN big AS b ON s.k = b.k"
        )
        plan = db.explain_plan(query)
        assert "order: b ⋈ s" in plan
        assert "(syntactic)" not in plan.split("order:")[1].splitlines()[0]
        # And the reordered plan is still correct.
        three_ways(db, query)

    def test_order_by_suppresses_reorder(self):
        db = Database()
        db.set("small", [{"k": i} for i in range(8)])
        db.set("big", [{"k": i % 8, "v": i} for i in range(4_000)])
        plan = db.explain_plan(
            "SELECT VALUE {'k': s.k, 'v': b.v} FROM small AS s "
            "JOIN big AS b ON s.k = b.k ORDER BY b.v"
        )
        assert "order: s ⋈ b (syntactic)" in plan


class TestEvaluatorMemoization:
    def test_same_config_reuses_compiled_closures(self):
        db = Database()
        db.set("t", [{"x": i} for i in range(10)])
        query = "SELECT VALUE t.x + 1 FROM t AS t WHERE t.x > 2"
        db.execute(query)
        evaluators = dict(db._evaluators)
        assert len(evaluators) == 1
        (evaluator,) = evaluators.values()
        compiled_before = len(evaluator._compiled)
        db.execute(query)
        assert dict(db._evaluators) == evaluators
        # A cached plan re-executes without re-running compile_expr.
        assert len(evaluator._compiled) == compiled_before

    def test_parameters_rebind_without_a_fresh_evaluator(self):
        db = Database()
        db.set("t", [{"x": i} for i in range(10)])
        query = "SELECT VALUE t.x FROM t AS t WHERE t.x > ?"
        first = db.execute(query, parameters=[7])
        second = db.execute(query, parameters=[3])
        assert len(list(first)) == 2
        assert len(list(second)) == 6
        assert len(db._evaluators) == 1

    def test_data_change_invalidates_stats_and_plans(self):
        db = Database()
        db.set("t", [{"x": i} for i in range(4)])
        query = "SELECT VALUE t.x FROM t AS t WHERE t.x >= 0"
        assert len(list(db.execute(query))) == 4
        assert "stats: t: rows=4" in db.explain_plan(query)
        db.set("t", [{"x": i} for i in range(9)])
        assert len(list(db.execute(query))) == 9
        assert "stats: t: rows=9" in db.explain_plan(query)

    def test_distinct_configs_get_distinct_evaluators(self):
        db = Database()
        db.set("t", [{"x": 1}])
        query = "SELECT VALUE t.x FROM t AS t"
        db.execute(query)
        db.execute(query, batch=False)
        db.execute(query, typing_mode="strict")
        assert len(db._evaluators) == 3
