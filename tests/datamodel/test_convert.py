"""Python ↔ model conversion."""

import pytest

from repro.datamodel.convert import from_python, to_python
from repro.datamodel.values import MISSING, Bag, Struct


class TestFromPython:
    def test_scalars_pass_through(self):
        for value in (None, True, 3, 2.5, "s"):
            assert from_python(value) is value

    def test_dict_becomes_struct(self):
        value = from_python({"a": {"b": 1}})
        assert isinstance(value, Struct)
        assert isinstance(value["a"], Struct)

    def test_list_becomes_array(self):
        assert from_python([1, [2]]) == [1, [2]]

    def test_tuple_becomes_array(self):
        assert from_python((1, 2)) == [1, 2]

    def test_set_becomes_bag(self):
        value = from_python({1})
        assert isinstance(value, Bag)
        assert value.to_list() == [1]

    def test_model_values_pass_through(self):
        bag = Bag([Struct({"a": 1})])
        converted = from_python(bag)
        assert converted == bag

    def test_nested_python_inside_model_is_converted(self):
        bag = Bag([{"a": [1]}])
        converted = from_python(bag)
        assert isinstance(converted.to_list()[0], Struct)

    def test_non_string_dict_keys_coerced(self):
        value = from_python({1: "x"})
        assert value.keys() == ["1"]

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            from_python(object())


class TestToPython:
    def test_struct_becomes_dict(self):
        assert to_python(Struct({"a": 1})) == {"a": 1}

    def test_bag_becomes_list(self):
        assert to_python(Bag([1, 2])) == [1, 2]

    def test_missing_becomes_none_by_default(self):
        assert to_python(MISSING) is None

    def test_missing_rejected_when_strict(self):
        with pytest.raises(ValueError):
            to_python(MISSING, missing_as_none=False)

    def test_missing_collection_elements_dropped(self):
        assert to_python(Bag([1, MISSING, 2])) == [1, 2]
        assert to_python([1, MISSING]) == [1]

    def test_round_trip(self):
        data = {"emps": [{"name": "Bob", "projects": ["a", "b"], "title": None}]}
        assert to_python(from_python(data)) == data
