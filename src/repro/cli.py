"""Command-line interface: a SQL++ REPL, script runner and kit runner.

Usage::

    python -m repro                     # interactive REPL
    python -m repro query.sqlpp         # run a script of ;-separated queries
    python -m repro --compat-kit        # run the compatibility kit
    python -m repro -c "SELECT VALUE 1" # one-shot query
    python -m repro lint query.sqlpp    # static analysis, no execution
    python -m repro --check query.sqlpp # refuse to run on lint errors
    python -m repro report store.jsonl  # summarize a persisted query store

REPL dot-commands::

    .load <name> <path> [format]   load a file into a named value
    .set  <name> <literal>         define a named value from a literal
    .names                         list named values
    .mode core|compat              toggle the SQL-compatibility flag
    .typing permissive|strict      toggle the typing mode
    .explain <query>               show the rewritten Core query
    .plan <query>                  show the physical plan (same as EXPLAIN)
    .analyze <query>               run and show the annotated plan
    .trace <query>                 run and show the structured span tree
    .lint <query>                  statically analyze without running
    .rewrites [query]              list the semantic rewrite rules, or
                                   show the rewrites fired on a query
    .stats                         show session metrics counters
    .metrics                       show Prometheus-format metrics text
    .topqueries [n]                show the query store's top fingerprints
    .schema <name> <ddl>           impose a schema on a named value
    .quit

``EXPLAIN <query>`` (as a statement, in the REPL or via ``-c``) prints
the physical plan the optimizer chose — the FROM operator tree, pushed
predicates and the rewrites that fired (see docs/PLANNER.md).
``EXPLAIN ANALYZE <query>`` additionally *executes* the query and
annotates every operator with its invocation count, rows in/out and
wall time (see docs/OBSERVABILITY.md); ``--stats`` prints per-query
phase timings, and ``--timeout`` / ``--max-rows`` / ``--max-recursion``
stop runaway queries with a partial-progress report instead of a hang.

``--parallel N`` fans partitionable base scans across N forked worker
processes (morsel-driven; see docs/PLANNER.md), and ``--no-batch``
falls back from the chunk-vectorized executor to the row-at-a-time
streaming pipeline.  ``--no-rewrite`` disables the semantic rewrite
registry (docs/REWRITER.md) the same way ``--no-optimize`` bypasses
the physical planner; ``--explain-rewrites`` prints, for each query,
the Core before/after the registry ran and every rewrite that fired
with its discharged safety conditions, instead of executing.

``--trace-out FILE`` records a structured span trace of every executed
query and writes one Chrome trace-event JSON file at exit (load it in
Perfetto or ``chrome://tracing``); ``--metrics-out FILE`` writes the
session's metrics in Prometheus text format at exit.
"""

from __future__ import annotations

import argparse
import re
import sys
from typing import List, Optional, Tuple

from repro import __version__
from repro.catalog.database import Database
from repro.errors import ResourceExhausted, SQLPPError
from repro.formats.sqlpp_text import dumps


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "lint":
        return _lint_main(argv[1:])
    if argv and argv[0] == "report":
        return _report_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="sqlpp",
        description="SQL++ query processor (reproduction of Carey et al., "
        "ICDE 2024)",
    )
    parser.add_argument("script", nargs="?", help="script of ;-separated queries")
    parser.add_argument("-c", "--command", help="run one query and exit")
    parser.add_argument(
        "--core",
        action="store_true",
        help="composability mode (SQL-compatibility flag off)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="stop-on-error typing mode (default: permissive)",
    )
    parser.add_argument(
        "--no-optimize",
        action="store_true",
        help="bypass the physical planner (reference Core semantics)",
    )
    parser.add_argument(
        "--no-batch",
        action="store_true",
        help="disable the batch (chunk-vectorized) executor; queries "
        "run on the row-at-a-time streaming pipeline",
    )
    parser.add_argument(
        "--no-rewrite",
        action="store_true",
        help="disable the semantic rewrite registry (decorrelation, "
        "semi-joins, CSE — see docs/REWRITER.md)",
    )
    parser.add_argument(
        "--explain-rewrites",
        action="store_true",
        help="for each query, print the Core before/after the rewrite "
        "registry and the rewrites that fired, instead of executing",
    )
    parser.add_argument(
        "--parallel",
        type=int,
        default=0,
        metavar="N",
        help="fan partitionable scans across N worker processes "
        "(morsel-driven; 0 = serial, the default)",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print per-query phase timings (parse/rewrite/plan/execute) "
        "to stderr after each query",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        metavar="SECONDS",
        help="stop any query that runs longer than SECONDS",
    )
    parser.add_argument(
        "--max-rows",
        type=int,
        metavar="N",
        help="stop any query that materializes more than N binding rows",
    )
    parser.add_argument(
        "--max-recursion",
        type=int,
        metavar="N",
        help="stop any query nesting subqueries deeper than N",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        help="record structured spans for every executed query and "
        "write a Chrome trace-event JSON file (Perfetto-loadable) "
        "to PATH at exit",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="write session metrics in Prometheus text format to PATH "
        "at exit",
    )
    parser.add_argument(
        "--slow-log",
        metavar="PATH",
        help="append per-query metrics records (JSON lines) to PATH",
    )
    parser.add_argument(
        "--store",
        metavar="PATH",
        help="persist the query store (fingerprinted workload history, "
        "plan-change/regression events) as JSON lines at PATH; "
        "summarize later with the `report` verb",
    )
    parser.add_argument(
        "--slow-log-threshold",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="with --slow-log: only log queries slower than SECONDS "
        "(errors are always logged)",
    )
    parser.add_argument(
        "--load",
        action="append",
        default=[],
        metavar="NAME=PATH",
        help="load a data file into a named value (repeatable)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="statically analyze every query before running it and "
        "refuse execution on error-severity findings "
        "(see docs/ANALYZER.md)",
    )
    parser.add_argument(
        "--fail-on",
        choices=("error", "warning", "info"),
        default="error",
        help="with --check: lowest finding severity that refuses "
        "execution (default: error)",
    )
    parser.add_argument(
        "--compat-kit",
        action="store_true",
        help="run the SQL++ compatibility kit and print the report",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="with --compat-kit: print a machine-readable JSON report",
    )
    parser.add_argument(
        "--version", action="version", version=f"sqlpp {__version__}"
    )
    args = parser.parse_args(argv)
    if args.parallel < 0:
        parser.error("--parallel expects a non-negative worker count")

    if args.compat_kit:
        from repro.compat import format_report, run_cases

        results = run_cases()
        if args.json:
            import json as json_module

            from repro.compat.report import report_json

            print(json_module.dumps(report_json(results), indent=2))
        else:
            print(format_report(results))
        return 0 if all(result.passed for result in results) else 1

    metrics_sinks = None
    if args.slow_log:
        from repro.observability import JsonLinesSink

        metrics_sinks = [
            JsonLinesSink(args.slow_log, threshold_s=args.slow_log_threshold)
        ]
    db = Database(
        typing_mode="strict" if args.strict else "permissive",
        sql_compat=not args.core,
        optimize=not args.no_optimize,
        batch=not args.no_batch,
        rewrite=not args.no_rewrite,
        parallel=args.parallel,
        timeout_s=args.timeout,
        max_rows=args.max_rows,
        max_recursion=args.max_recursion,
        metrics_sinks=metrics_sinks,
        query_store=args.store if args.store else True,
    )
    for spec in args.load:
        name, __, path = spec.partition("=")
        if not path:
            parser.error(f"--load expects NAME=PATH, got {spec!r}")
        db.load(name, path)

    trace_context = None
    if args.trace_out:
        from repro.observability import TraceContext

        trace_context = TraceContext(name="sqlpp-session")
    try:
        if args.command:
            return _run_text(
                db,
                args.command,
                stats=args.stats,
                trace=trace_context,
                check=args.check,
                explain_rewrites=args.explain_rewrites,
                fail_on=args.fail_on,
            )
        if args.script:
            with open(args.script) as handle:
                return _run_text(
                    db,
                    handle.read(),
                    stats=args.stats,
                    trace=trace_context,
                    check=args.check,
                    explain_rewrites=args.explain_rewrites,
                    fail_on=args.fail_on,
                )
        return _repl(
            db,
            stats=args.stats,
            trace=trace_context,
            check=args.check,
            fail_on=args.fail_on,
        )
    finally:
        if trace_context is not None:
            trace_context.write_chrome_trace(args.trace_out)
        if args.metrics_out:
            with open(args.metrics_out, "w") as handle:
                handle.write(db.metrics.expose_text())
        db.close()


def _lint_main(argv: List[str]) -> int:
    """The ``lint`` verb: static analysis without execution.

    ``python -m repro lint query.sqlpp ...`` analyzes each script and
    prints caret-context findings (or one JSON document per input with
    ``--json``); exit status 1 when any finding is error-severity.
    ``--compat-kit`` lints every paper listing in the conformance
    corpus as a false-positive self-check: every listing must be free
    of error-severity findings in its own language modes.
    """
    parser = argparse.ArgumentParser(
        prog="sqlpp lint",
        description="statically analyze SQL++ scripts "
        "(see docs/ANALYZER.md for the rule catalog)",
    )
    parser.add_argument("files", nargs="*", help="SQL++ script files")
    parser.add_argument(
        "-c", "--command", help="lint one query given on the command line"
    )
    parser.add_argument(
        "--core", action="store_true", help="composability mode"
    )
    parser.add_argument(
        "--strict", action="store_true", help="stop-on-error typing mode"
    )
    parser.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="CODE",
        help="suppress a rule code (repeatable)",
    )
    parser.add_argument(
        "--load",
        action="append",
        default=[],
        metavar="NAME=PATH",
        help="load a data file into a named value first (repeatable)",
    )
    parser.add_argument(
        "--fail-on",
        choices=("error", "warning", "info"),
        default="error",
        help="lowest finding severity that fails the run "
        "(default: error)",
    )
    parser.add_argument(
        "--compat-kit",
        action="store_true",
        help="lint every compatibility-kit listing (false-positive "
        "self-check)",
    )
    args = parser.parse_args(argv)
    if args.compat_kit:
        return _lint_compat_kit(json_output=args.json)
    if not args.files and not args.command:
        parser.error("nothing to lint: give files, -c QUERY or --compat-kit")

    from repro.analysis import render_json, render_text

    db = Database(
        typing_mode="strict" if args.strict else "permissive",
        sql_compat=not args.core,
    )
    for spec in args.load:
        name, __, path = spec.partition("=")
        if not path:
            parser.error(f"--load expects NAME=PATH, got {spec!r}")
        db.load(name, path)

    inputs: List[Tuple[str, str]] = []
    if args.command:
        inputs.append(("<command>", args.command))
    for path in args.files:
        with open(path) as handle:
            inputs.append((path, handle.read()))

    status = 0
    for label, text in inputs:
        diagnostics = db.check(text, suppress=args.ignore)
        if args.json:
            print(render_json(diagnostics, filename=label))
        else:
            print(render_text(diagnostics, source=text, filename=label))
        if any(_at_least(d.severity, args.fail_on) for d in diagnostics):
            status = 1
    return status


#: Severity rank for ``--fail-on`` thresholds (higher = more severe).
_SEVERITY_RANK = {"info": 0, "warning": 1, "error": 2}


def _at_least(severity: str, threshold: str) -> bool:
    """Whether ``severity`` meets or exceeds the ``--fail-on`` bar."""
    return _SEVERITY_RANK.get(severity, 0) >= _SEVERITY_RANK[threshold]


def _report_main(argv: List[str]) -> int:
    """The ``report`` verb: summarize a persisted query store.

    ``python -m repro report store.jsonl`` reloads the JSON-lines store
    a previous ``--store`` session wrote (corrupt lines are skipped)
    and prints the workload report: top fingerprints by accumulated
    wall time, plan-change and latency-regression counts, q-errors.
    """
    parser = argparse.ArgumentParser(
        prog="sqlpp report",
        description="summarize a persisted query store "
        "(see docs/OBSERVABILITY.md)",
    )
    parser.add_argument("store", help="query-store JSON-lines file")
    parser.add_argument(
        "-n",
        "--top",
        type=int,
        default=10,
        metavar="N",
        help="how many fingerprints to show (default 10)",
    )
    parser.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    args = parser.parse_args(argv)

    from repro.observability import QueryStore

    try:
        store = QueryStore(path=args.store)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    try:
        if args.json:
            import json as json_module

            print(json_module.dumps(store.snapshot(), indent=2))
        else:
            print(store.report(args.top))
    finally:
        store.close()
    return 0


def _lint_compat_kit(json_output: bool = False) -> int:
    """Lint every positive conformance listing in both typing modes.

    The corpus doubles as the analyzer's false-positive suite: the
    paper's listings are all valid, so any error-severity finding on
    one is an analyzer bug.
    """
    from repro.analysis import AnalyzerOptions, analyze
    from repro.analysis.diagnostics import ERROR
    from repro.compat.corpus import all_cases
    from repro.config import EvalConfig

    failures = []
    checked = 0
    for case in all_cases():
        if case.expect_error is not None:
            continue
        for typing_mode in ("permissive", "strict"):
            checked += 1
            options = AnalyzerOptions(
                config=EvalConfig(
                    sql_compat=case.sql_compat, typing_mode=typing_mode
                ),
                catalog_names=tuple(case.data),
            )
            errors = [
                d
                for d in analyze(case.query, options)
                if d.severity == ERROR
            ]
            if errors:
                failures.append((case.case_id, typing_mode, errors))
    if json_output:
        import json as json_module

        print(
            json_module.dumps(
                {
                    "checked": checked,
                    "failures": [
                        {
                            "case_id": case_id,
                            "typing_mode": typing_mode,
                            "diagnostics": [d.to_dict() for d in errors],
                        }
                        for case_id, typing_mode, errors in failures
                    ],
                },
                indent=2,
            )
        )
    else:
        for case_id, typing_mode, errors in failures:
            for diagnostic in errors:
                print(
                    f"{case_id} [{typing_mode}]: {diagnostic.code} "
                    f"{diagnostic.message}"
                )
        print(
            f"compat-kit lint: {checked} listing/mode combinations, "
            f"{len(failures)} with error findings"
        )
    return 1 if failures else 0


_EXPLAIN_PREFIX = re.compile(r"^\s*EXPLAIN(\s+ANALYZE)?\b", re.IGNORECASE)


def _strip_explain(text: str) -> Optional[Tuple[str, bool]]:
    """The query under an ``EXPLAIN [ANALYZE]`` verb as ``(query,
    analyze)``, or None when there is no such verb."""
    match = _EXPLAIN_PREFIX.match(text)
    if match is None:
        return None
    return text[match.end():].strip().rstrip(";"), match.group(1) is not None


def _print_stats(db: Database) -> None:
    """Phase timings for the query that just ran (``--stats``)."""
    last = db.metrics.last
    if last is None:
        return
    for line in last.format_phases():
        print(f"-- {line}", file=sys.stderr)


def _report_exhausted(exc: ResourceExhausted, stream) -> None:
    """The graceful partial-result report for a stopped query."""
    print(f"resource limit: {exc}", file=stream)
    print(
        f"  stopped after {exc.rows_produced} binding rows, "
        f"{exc.elapsed_s:.3f}s elapsed ({exc.kind})",
        file=stream,
    )


def _session_tracer(trace):
    """A fresh per-query ExecTracer feeding the session trace, or None."""
    if trace is None:
        return None
    from repro.observability import ExecTracer

    return ExecTracer(trace=trace)


def _refused(db: Database, text: str, fail_on: str = "error") -> bool:
    """The ``--check`` gate: True when static analysis finds findings
    at or above the ``--fail-on`` severity threshold.

    Every finding is printed (caret context included); only findings
    meeting the threshold block execution — by default errors, with
    ``--fail-on warning`` / ``--fail-on info`` tightening the gate.
    """
    from repro.analysis import render_text

    diagnostics = db.check(text)
    if not diagnostics:
        return False
    print(render_text(diagnostics, source=text), file=sys.stderr)
    return any(_at_least(d.severity, fail_on) for d in diagnostics)


def _run_text(
    db: Database,
    text: str,
    stats: bool = False,
    trace=None,
    check: bool = False,
    explain_rewrites: bool = False,
    fail_on: str = "error",
) -> int:
    from repro.syntax.parser import parse_script

    if explain_rewrites:
        from repro.syntax.printer import print_ast

        try:
            queries = parse_script(text)
        except SQLPPError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        status = 0
        for query in queries:
            try:
                print(db.explain_rewrites(print_ast(query)))
            except SQLPPError as exc:
                print(f"error: {exc}", file=sys.stderr)
                status = 1
        return status

    explained = _strip_explain(text)
    if check and _refused(db, explained[0] if explained else text, fail_on):
        print(
            "error: refusing to execute (--check found findings at "
            f"or above --fail-on {fail_on})",
            file=sys.stderr,
        )
        return 1
    if explained is not None:
        query, analyze = explained
        try:
            if analyze:
                print(db.explain_analyze(query))
            else:
                print(db.explain_plan(query))
            return 0
        except ResourceExhausted as exc:
            _report_exhausted(exc, sys.stderr)
            return 1
        except SQLPPError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1

    try:
        queries = parse_script(text)
    except SQLPPError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    status = 0
    for query in queries:
        from repro.syntax.printer import print_ast

        try:
            print(
                dumps(
                    db.execute(
                        print_ast(query), tracer=_session_tracer(trace)
                    )
                )
            )
        except ResourceExhausted as exc:
            _report_exhausted(exc, sys.stderr)
            status = 1
        except SQLPPError as exc:
            print(f"error: {exc}", file=sys.stderr)
            status = 1
        if stats:
            _print_stats(db)
    return status


def _repl(
    db: Database,
    stats: bool = False,
    trace=None,
    check: bool = False,
    fail_on: str = "error",
) -> int:
    print(f"sqlpp {__version__} — type .help for commands, .quit to exit")
    buffer: List[str] = []
    while True:
        prompt = "sqlpp> " if not buffer else "  ...> "
        try:
            line = input(prompt)
        except EOFError:
            print()
            return 0
        except KeyboardInterrupt:
            print()
            buffer.clear()
            continue
        stripped = line.strip()
        if not buffer and stripped.startswith("."):
            if not _dot_command(db, stripped):
                return 0
            continue
        buffer.append(line)
        if stripped.endswith(";") or (stripped and not buffer[:-1] and _is_complete(stripped)):
            text = "\n".join(buffer).rstrip().rstrip(";")
            buffer.clear()
            if not text.strip():
                continue
            try:
                explained = _strip_explain(text)
                if check and _refused(
                    db, explained[0] if explained else text, fail_on
                ):
                    print(f"refused (--check, --fail-on {fail_on})")
                    continue
                if explained is not None:
                    query, analyze = explained
                    if analyze:
                        print(db.explain_analyze(query))
                    else:
                        print(db.explain_plan(query))
                else:
                    print(dumps(db.execute(text, tracer=_session_tracer(trace))))
                    if stats:
                        _print_stats(db)
            except ResourceExhausted as exc:
                _report_exhausted(exc, sys.stdout)
            except SQLPPError as exc:
                print(f"error: {exc}")


def _is_complete(text: str) -> bool:
    """Single-line inputs without ';' still run if they parse."""
    from repro.syntax.parser import parse

    explained = _strip_explain(text)
    try:
        parse(text if explained is None else explained[0])
    except SQLPPError:
        return False
    return True


def _dot_command(db: Database, line: str) -> bool:
    """Handle a REPL dot-command; returns False to exit."""
    parts = line.split(None, 2)
    command = parts[0]
    try:
        if command in (".quit", ".exit"):
            return False
        if command == ".help":
            print(__doc__)
        elif command == ".names":
            for name in db.names():
                print(name)
        elif command == ".load" and len(parts) == 3:
            name, rest = parts[1], parts[2].split()
            db.load(name, rest[0], rest[1] if len(rest) > 1 else None)
            print(f"loaded {name}")
        elif command == ".set" and len(parts) == 3:
            db.load_value(parts[1], parts[2])
            print(f"set {parts[1]}")
        elif command == ".schema" and len(parts) == 3:
            db.set_schema(parts[1], parts[2])
            print(f"schema set on {parts[1]}")
        elif command == ".mode" and len(parts) >= 2:
            # dataclasses.replace keeps every other dial — optimize,
            # resource limits — instead of silently resetting them.
            import dataclasses

            db._config = dataclasses.replace(
                db._config, sql_compat=(parts[1] != "core")
            )
            print(f"mode: {'compat' if db._config.sql_compat else 'core'}")
        elif command == ".typing" and len(parts) >= 2:
            import dataclasses

            db._config = dataclasses.replace(db._config, typing_mode=parts[1])
            print(f"typing: {db._config.typing_mode}")
        elif command == ".explain" and len(parts) >= 2:
            print(db.explain(line.split(None, 1)[1]))
        elif command == ".plan" and len(parts) >= 2:
            print(db.explain_plan(line.split(None, 1)[1]))
        elif command == ".analyze" and len(parts) >= 2:
            print(db.explain_analyze(line.split(None, 1)[1]))
        elif command == ".lint" and len(parts) >= 2:
            from repro.analysis import render_text

            text = line.split(None, 1)[1]
            print(render_text(db.check(text), source=text))
        elif command == ".rewrites":
            if len(parts) >= 2:
                print(db.explain_rewrites(line.split(None, 1)[1]))
            else:
                from repro.core import rewrite_rules

                print(rewrite_rules.describe_rules())
        elif command == ".trace" and len(parts) >= 2:
            print(db.trace(line.split(None, 1)[1]).format_tree())
        elif command == ".stats":
            print(db.metrics.format_snapshot())
        elif command == ".metrics":
            print(db.metrics.expose_text(), end="")
        elif command == ".topqueries":
            store = db.query_store()
            if store is None:
                print("query store is disabled")
            else:
                n = 10
                if len(parts) >= 2:
                    try:
                        n = int(parts[1])
                    except ValueError:
                        print(f"usage: .topqueries [n], got {parts[1]!r}")
                        return True
                print(store.report(n))
        else:
            print(f"unknown command {command!r}; try .help")
    except (SQLPPError, OSError) as exc:
        print(f"error: {exc}")
    return True


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
