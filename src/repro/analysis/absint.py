"""Abstract interpretation over the rewritten SQL++ Core.

Three cooperating analyses, all *sound under two-valued absence*
(NULL vs MISSING, paper Section IV) in both typing modes:

* **Constant folding** (:func:`fold_query` / :func:`fold_expr`) —
  literal arithmetic, string concatenation, boolean connectives,
  comparisons, ``BETWEEN`` / ``LIKE`` / ``IN`` / ``IS`` over literal
  operands, and ``CASE`` with a constant scrutinee.  Folding *executes
  the real runtime operators* (:mod:`repro.functions.operators`) under
  the query's own :class:`~repro.config.EvalConfig`, so a fold can
  never disagree with evaluation; a subexpression whose evaluation
  raises (e.g. ``1 + 'a'`` in strict mode) simply stays unfolded.

* **Conjunction satisfiability** (:func:`never_true`) — an interval /
  value-set / type-category domain over the conjuncts of a WHERE, ON
  or HAVING clause.  The key observation making this mode-safe: a
  filter keeps a binding only when the predicate is *exactly* ``TRUE``
  (:func:`repro.functions.operators.is_true`), so proving the
  conjunction can never be TRUE proves the clause empty even when
  individual conjuncts yield NULL or MISSING.  Comparisons against an
  absent literal can never be TRUE *and can never raise* — ``compare``
  and ``equals`` return NULL/MISSING before any type check — so those
  proofs hold in strict mode too.

* **Emptiness pruning** (:func:`block_prune_reason`) — decides when a
  proven never-TRUE WHERE clause lets the planner collapse the whole
  FROM pipeline to a zero-row operator.  Beyond the proof itself this
  needs an *erasure* argument (dropping the FROM enumeration and the
  per-row predicate evaluation must not erase an error or a side
  effect), which only holds under permissive typing with relocatable,
  fully-bound expressions; the gate mirrors the planner's existing
  pushdown soundness conditions (docs/PLANNER.md).

:func:`predicate_diagnostics` reports the same facts to users as lint
rules SQLPP120–124 (docs/ANALYZER.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    cast,
)

from repro import errors
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.lattice import (
    BOOLEAN,
    CATEGORIES,
    MISSING_CAT,
    NULL,
    NUMBER,
    ORDERED_CATEGORIES,
    STRING,
    AType,
)
from repro.analysis.rules import make
from repro.analysis.typeflow import TypeFlow
from repro.config import EvalConfig
from repro.core.planner import (
    free_names,
    is_relocatable,
    item_vars,
    split_conjuncts,
)
from repro.datamodel.equality import deep_equals
from repro.datamodel.values import MISSING
from repro.functions import operators as ops
from repro.syntax import ast
from repro.syntax.printer import print_ast

__all__ = [
    "Contradiction",
    "block_prune_reason",
    "fold_expr",
    "fold_query",
    "never_true",
    "predicate_diagnostics",
    "unreachable_whens",
]


# =========================================================================
# Constant folding
# =========================================================================

#: Sentinel for "this branch's verdict is not statically known".
_UNKNOWN = object()


def _is_const(node: ast.Node) -> bool:
    """True for a literal scalar/absent value we may compute with."""
    if not isinstance(node, ast.Literal):
        return False
    value = node.value
    return (
        value is None
        or value is MISSING
        or isinstance(value, (bool, int, float, str))
    )


def _const_value(node: ast.Node) -> Any:
    return cast(ast.Literal, node).value


def _is_scalar(value: Any) -> bool:
    return (
        value is None
        or value is MISSING
        or isinstance(value, (bool, int, float, str))
    )


def _literal(value: Any, origin: ast.Node) -> ast.Literal:
    """A folded literal carrying the origin node's source span."""
    folded = ast.Literal(value=value)
    ast.copy_span(folded, origin)
    return folded


def _apply_binary(op: str, left: Any, right: Any, config: EvalConfig) -> Any:
    """Evaluate one binary operator exactly as compile_expr would."""
    if op == "AND":
        return ops.logical_and(left, right, config)
    if op == "OR":
        return ops.logical_or(left, right, config)
    if op == "=":
        return ops.equals(left, right, config)
    if op == "!=":
        return ops.not_equals(left, right, config)
    if op in ("<", "<=", ">", ">="):
        return ops.compare(op, left, right, config)
    if op == "||":
        return ops.concat(left, right, config)
    return ops.arithmetic(op, left, right, config)


def _branch_verdict(
    searched: bool, subject: Any, condition: ast.Expr, config: EvalConfig
) -> Any:
    """The match verdict of one constant-conditioned CASE branch, or
    :data:`_UNKNOWN` when the condition is dynamic or comparing the
    simple-CASE subject would raise at runtime."""
    if not _is_const(condition):
        return _UNKNOWN
    value = _const_value(condition)
    if searched:
        return value
    try:
        return ops.equals(subject, value, config)
    except errors.SQLPPError:
        return _UNKNOWN


def _fold_case(node: ast.CaseExpr, config: EvalConfig) -> ast.Expr:
    """Fold a CASE whose scrutinee (and some conditions) are constant.

    Mirrors ``Evaluator._eval_case`` exactly: a MISSING simple-CASE
    operand (outside sql_compat) short-circuits the whole expression;
    branch conditions are tried in order; a MISSING verdict (outside
    sql_compat) makes the CASE MISSING.  Dropping a constant
    non-matching branch is sound because literal conditions are pure.
    """
    searched = node.operand is None
    subject: Any = None
    if not searched:
        operand = node.operand
        assert operand is not None
        if not _is_const(operand):
            return node
        subject = _const_value(operand)
        if subject is MISSING and not config.sql_compat:
            return _literal(MISSING, node)

    kept: List[Tuple[ast.Expr, ast.Expr]] = []
    else_: Optional[ast.Expr] = node.else_
    decidable = True  # no dynamic condition seen yet
    changed = False
    for index, (condition, result) in enumerate(node.whens):
        verdict = _branch_verdict(searched, subject, condition, config)
        if verdict is _UNKNOWN:
            decidable = False
            kept.append((condition, result))
            continue
        if verdict is True:
            if decidable and not kept:
                return result
            # Reached => matches; everything after is unreachable.
            kept.append((condition, result))
            else_ = None
            changed = changed or index + 1 < len(node.whens)
            break
        if verdict is MISSING and not config.sql_compat:
            if decidable and not kept:
                return _literal(MISSING, node)
            # Reached => whole CASE is MISSING; keep the branch (the
            # runtime produces the MISSING), drop the unreachable rest.
            kept.append((condition, result))
            else_ = None
            changed = changed or index + 1 < len(node.whens)
            break
        # FALSE / NULL / non-boolean / sql_compat MISSING: never matches.
        changed = True
    else:
        if not kept:
            # Every branch statically misses: the CASE is its ELSE arm.
            return else_ if else_ is not None else _literal(None, node)

    if not changed and else_ is node.else_:
        return node
    folded = ast.CaseExpr(operand=node.operand, whens=kept, else_=else_)
    ast.copy_span(folded, node)
    return folded


def _fold_node(node: ast.Node, config: EvalConfig) -> ast.Node:
    """One bottom-up folding step (children already folded)."""
    try:
        if isinstance(node, ast.Unary) and _is_const(node.operand):
            value = _const_value(node.operand)
            if node.op == "NOT":
                result = ops.logical_not(value, config)
            elif node.op == "-":
                result = ops.negate(value, config)
            else:
                result = ops.unary_plus(value, config)
            return _literal(result, node) if _is_scalar(result) else node

        if (
            isinstance(node, ast.Binary)
            and _is_const(node.left)
            and _is_const(node.right)
        ):
            result = _apply_binary(
                node.op,
                _const_value(node.left),
                _const_value(node.right),
                config,
            )
            return _literal(result, node) if _is_scalar(result) else node

        if isinstance(node, ast.IsPredicate) and _is_const(node.operand):
            verdict = ops.is_predicate(
                _const_value(node.operand), node.kind, config
            )
            return _literal(not verdict if node.negated else verdict, node)

        if (
            isinstance(node, ast.Between)
            and _is_const(node.operand)
            and _is_const(node.low)
            and _is_const(node.high)
        ):
            value = _const_value(node.operand)
            verdict = ops.logical_and(
                ops.compare(">=", value, _const_value(node.low), config),
                ops.compare("<=", value, _const_value(node.high), config),
                config,
            )
            if node.negated:
                verdict = ops.logical_not(verdict, config)
            return _literal(verdict, node) if _is_scalar(verdict) else node

        if (
            isinstance(node, ast.Like)
            and _is_const(node.operand)
            and _is_const(node.pattern)
            and (node.escape is None or _is_const(node.escape))
        ):
            escape = (
                None if node.escape is None else _const_value(node.escape)
            )
            verdict = ops.like(
                _const_value(node.operand),
                _const_value(node.pattern),
                escape,
                config,
            )
            if node.negated:
                verdict = ops.logical_not(verdict, config)
            return _literal(verdict, node) if _is_scalar(verdict) else node

        if (
            isinstance(node, ast.InPredicate)
            and _is_const(node.operand)
            and isinstance(node.collection, (ast.ArrayLit, ast.BagLit))
            and all(_is_const(item) for item in node.collection.items)
        ):
            verdict = ops.in_collection(
                _const_value(node.operand),
                [_const_value(item) for item in node.collection.items],
                config,
            )
            if node.negated:
                verdict = ops.logical_not(verdict, config)
            return _literal(verdict, node) if _is_scalar(verdict) else node

        if isinstance(node, ast.CaseExpr):
            return _fold_case(node, config)
    except errors.SQLPPError:
        # Evaluating this operator raises at runtime (e.g. a strict-mode
        # type mismatch, or a LIKE pattern ending in its escape char):
        # keep the node so the runtime raises exactly as before.
        return node
    return node


def fold_expr(expr: ast.Expr, config: EvalConfig) -> ast.Expr:
    """The expression with every statically-computable subtree folded."""
    return cast(
        ast.Expr, expr.transform(lambda node: _fold_node(node, config))
    )


def fold_query(query: ast.Query, config: EvalConfig) -> Tuple[ast.Query, int]:
    """Constant-fold a Core query; returns ``(query, folds)``.

    ``folds`` counts replaced nodes (0 means the original object is
    returned untouched, preserving object identity for plan caches).
    """
    folds = 0

    def fold(node: ast.Node) -> ast.Node:
        nonlocal folds
        replacement = _fold_node(node, config)
        if replacement is not node:
            folds += 1
        return replacement

    folded = cast(ast.Query, query.transform(fold))
    return (folded, folds) if folds else (query, 0)


# =========================================================================
# Conjunction satisfiability: interval / value-set / category domain
# =========================================================================


@dataclass(frozen=True)
class Contradiction:
    """Why a conjunction can never be exactly TRUE, with a span."""

    reason: str
    line: Optional[int] = None
    column: Optional[int] = None


_KIND_TO_CAT = {"boolean": BOOLEAN, "number": NUMBER, "string": STRING}

_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}

_CMP_OPS = frozenset(["=", "!=", "<", "<=", ">", ">="])

#: ``IS <kind>`` to the categories the operand may inhabit when the
#: predicate is TRUE.  Mirrors ``operators.is_predicate``: ``IS NULL``
#: is true for NULL *and* MISSING (paper Section IV-C).
_IS_KIND_CATS: Dict[str, FrozenSet[str]] = {
    "null": frozenset({NULL, MISSING_CAT}),
    "missing": frozenset({MISSING_CAT}),
    "absent": frozenset({NULL, MISSING_CAT}),
    "boolean": frozenset({BOOLEAN}),
    "number": frozenset({NUMBER}),
    "string": frozenset({STRING}),
}


def _scalar_kind(value: Any) -> Optional[str]:
    if isinstance(value, bool):
        return "boolean"
    if isinstance(value, (int, float)):
        return "number"
    if isinstance(value, str):
        return "string"
    return None


@dataclass
class _TermState:
    """Accumulated constraints on one comparable term (``x``, ``a.b``)."""

    key: str
    cats: Optional[FrozenSet[str]] = None
    values: Optional[List[Any]] = None
    lower: Optional[Any] = None
    lower_strict: bool = False
    upper: Optional[Any] = None
    upper_strict: bool = False
    excluded: List[Any] = field(default_factory=list)

    def constrain_cats(self, cats: FrozenSet[str]) -> Optional[str]:
        merged = cats if self.cats is None else self.cats & cats
        self.cats = merged
        if not merged:
            return (
                f"the type requirements on `{self.key}` are "
                "simultaneously unsatisfiable"
            )
        return None

    def constrain_value(self, value: Any) -> None:
        if self.values is None:
            self.values = [value]
        else:
            self.values = [
                v for v in self.values if deep_equals(v, value)
            ]

    def exclude_value(self, value: Any) -> None:
        self.excluded.append(value)

    def constrain_lower(self, value: Any, strict: bool) -> None:
        if self.lower is None or value > self.lower:
            self.lower, self.lower_strict = value, strict
        elif value == self.lower:
            self.lower_strict = self.lower_strict or strict

    def constrain_upper(self, value: Any, strict: bool) -> None:
        if self.upper is None or value < self.upper:
            self.upper, self.upper_strict = value, strict
        elif value == self.upper:
            self.upper_strict = self.upper_strict or strict

    def normalize(self) -> Optional[str]:
        """Check consistency after a mutation; a reason means empty."""
        if self.values is not None:
            kept = []
            for value in self.values:
                kind = _scalar_kind(value)
                if self.cats is not None and (
                    kind is None or _KIND_TO_CAT[kind] not in self.cats
                ):
                    continue
                if self.lower is not None:
                    if kind != _scalar_kind(self.lower):
                        continue
                    if self.lower_strict:
                        if not value > self.lower:
                            continue
                    elif not value >= self.lower:
                        continue
                if self.upper is not None:
                    if kind != _scalar_kind(self.upper):
                        continue
                    if self.upper_strict:
                        if not value < self.upper:
                            continue
                    elif not value <= self.upper:
                        continue
                if any(deep_equals(value, e) for e in self.excluded):
                    continue
                kept.append(value)
            self.values = kept
            if not kept:
                return (
                    f"no value of `{self.key}` satisfies every equality "
                    "and range constraint at once"
                )
        if (
            self.lower is not None
            and self.upper is not None
            and _scalar_kind(self.lower) == _scalar_kind(self.upper)
        ):
            if self.lower > self.upper or (
                self.lower == self.upper
                and (self.lower_strict or self.upper_strict)
            ):
                return (
                    f"the bounds on `{self.key}` describe an empty range"
                )
            if (
                self.lower == self.upper
                and not self.lower_strict
                and not self.upper_strict
                and any(deep_equals(self.lower, e) for e in self.excluded)
            ):
                return (
                    f"the only value `{self.key}` could take is "
                    "explicitly excluded"
                )
        return None


def _term_key(expr: ast.Expr) -> Optional[str]:
    """A stable identity for a deterministic navigation chain, or None."""
    if isinstance(expr, ast.VarRef):
        return expr.name
    if isinstance(expr, ast.Path):
        base = _term_key(expr.base)
        return None if base is None else f"{base}.{expr.attr}"
    if isinstance(expr, ast.Index) and isinstance(expr.index, ast.Literal):
        position = expr.index.value
        if isinstance(position, int) and not isinstance(position, bool):
            base = _term_key(expr.base)
            return None if base is None else f"{base}[{position}]"
    return None


def _absent_contradiction(
    value: Any, origin: ast.Expr
) -> Optional[Contradiction]:
    """A comparison against an absent literal can never be TRUE (and,
    because ``compare``/``equals`` return before any type check, can
    never raise either — the proof is strict-mode safe)."""
    if value is None or value is MISSING:
        rendered = "NULL" if value is None else "MISSING"
        return Contradiction(
            f"`{print_ast(origin)}` compares against {rendered}, "
            "which never yields TRUE",
            origin.line,
            origin.column,
        )
    return None


def _apply_cmp(
    states: Dict[str, _TermState],
    key: str,
    op: str,
    value: Any,
    origin: ast.Expr,
) -> Optional[Contradiction]:
    absent = _absent_contradiction(value, origin)
    if absent is not None:
        return absent
    kind = _scalar_kind(value)
    if kind is None:
        return None
    state = states.setdefault(key, _TermState(key))
    reason = state.constrain_cats(frozenset({_KIND_TO_CAT[kind]}))
    if reason is None:
        if op == "=":
            state.constrain_value(value)
        elif op == "!=":
            state.exclude_value(value)
        elif op in (">", ">="):
            state.constrain_lower(value, strict=op == ">")
        else:
            state.constrain_upper(value, strict=op == "<")
        reason = state.normalize()
    if reason is not None:
        return Contradiction(reason, origin.line, origin.column)
    return None


def _apply_conjunct(
    conjunct: ast.Expr,
    states: Dict[str, _TermState],
    config: EvalConfig,
) -> Optional[Contradiction]:
    """Fold one conjunct into the per-term states; unrecognized shapes
    contribute nothing (which is always sound)."""
    if isinstance(conjunct, ast.Binary) and conjunct.op in _CMP_OPS:
        key = _term_key(conjunct.left)
        if key is not None and _is_const(conjunct.right):
            return _apply_cmp(
                states, key, conjunct.op, _const_value(conjunct.right), conjunct
            )
        key = _term_key(conjunct.right)
        if key is not None and _is_const(conjunct.left):
            return _apply_cmp(
                states,
                key,
                _FLIP[conjunct.op],
                _const_value(conjunct.left),
                conjunct,
            )
        return None

    if isinstance(conjunct, ast.Between):
        low = _const_value(conjunct.low) if _is_const(conjunct.low) else _UNKNOWN
        high = (
            _const_value(conjunct.high) if _is_const(conjunct.high) else _UNKNOWN
        )
        for bound in (low, high):
            if bound is not _UNKNOWN:
                absent = _absent_contradiction(bound, conjunct)
                if absent is not None:
                    return absent
        if conjunct.negated:
            return None
        key = _term_key(conjunct.operand)
        if key is None:
            return None
        if low is not _UNKNOWN:
            problem = _apply_cmp(states, key, ">=", low, conjunct)
            if problem is not None:
                return problem
        if high is not _UNKNOWN:
            return _apply_cmp(states, key, "<=", high, conjunct)
        return None

    if (
        isinstance(conjunct, ast.InPredicate)
        and not conjunct.negated
        and isinstance(conjunct.collection, (ast.ArrayLit, ast.BagLit))
        and all(_is_const(item) for item in conjunct.collection.items)
    ):
        key = _term_key(conjunct.operand)
        if key is None:
            return None
        values = [
            _const_value(item)
            for item in conjunct.collection.items
            if _scalar_kind(_const_value(item)) is not None
        ]
        if not values:
            return Contradiction(
                f"`{print_ast(conjunct)}` has no comparable element, "
                "so it never yields TRUE",
                conjunct.line,
                conjunct.column,
            )
        state = states.setdefault(key, _TermState(key))
        cats = frozenset(
            _KIND_TO_CAT[kind]
            for kind in (_scalar_kind(v) for v in values)
            if kind is not None
        )
        reason = state.constrain_cats(cats)
        if reason is None:
            if state.values is None:
                state.values = list(values)
            else:
                state.values = [
                    v
                    for v in state.values
                    if any(deep_equals(v, member) for member in values)
                ]
            reason = state.normalize()
        if reason is not None:
            return Contradiction(reason, conjunct.line, conjunct.column)
        return None

    if isinstance(conjunct, ast.IsPredicate):
        key = _term_key(conjunct.operand)
        cats = _IS_KIND_CATS.get(conjunct.kind.lower())
        if key is None or cats is None:
            return None
        if conjunct.negated:
            cats = CATEGORIES - cats
        state = states.setdefault(key, _TermState(key))
        reason = state.constrain_cats(cats) or state.normalize()
        if reason is not None:
            return Contradiction(reason, conjunct.line, conjunct.column)
        return None

    return None


def never_true(
    conjuncts: Sequence[ast.Expr], config: EvalConfig
) -> Optional[Contradiction]:
    """Prove a conjunction can never be exactly TRUE, or return None.

    Sound in both typing modes: every recognized fact only narrows what
    a term must be *for its conjunct to yield TRUE*; everything
    unrecognized is ignored.  The caller decides separately whether the
    proof licenses any transformation (see :func:`block_prune_reason`).
    """
    states: Dict[str, _TermState] = {}
    for conjunct in conjuncts:
        if isinstance(conjunct, ast.Literal):
            if conjunct.value is True:
                continue
            return Contradiction(
                f"the conjunct `{print_ast(conjunct)}` is never TRUE",
                conjunct.line,
                conjunct.column,
            )
        problem = _apply_conjunct(conjunct, states, config)
        if problem is not None:
            return problem
    return None


# =========================================================================
# Tautologies
# =========================================================================


def tautological_conjunct(
    conjunct: ast.Expr, inferred: Optional[AType]
) -> bool:
    """True when ``x = x`` / ``x <= x`` is provably always TRUE.

    Requires the type-flow lattice to exclude NULL and MISSING (an
    absent operand makes the comparison absent, not TRUE) and, for
    ordered comparisons, an ordered category.
    """
    if not isinstance(conjunct, ast.Binary):
        return False
    if conjunct.op not in ("=", "<=", ">="):
        return False
    key = _term_key(conjunct.left)
    if key is None or key != _term_key(conjunct.right):
        return False
    if inferred is None:
        return False
    if inferred.may(NULL) or inferred.may(MISSING_CAT):
        return False
    if conjunct.op in ("<=", ">=") and not inferred.cats <= ORDERED_CATEGORIES:
        return False
    if conjunct.op == "=" and not all(
        cat in (NUMBER, STRING, BOOLEAN) for cat in inferred.cats
    ):
        return False
    return True


# =========================================================================
# Emptiness pruning (planner entry point)
# =========================================================================


def _enumeration_total(item: ast.FromItem, available: Set[str]) -> bool:
    """True when enumerating this FROM item can neither raise nor have
    effects under permissive typing, extending ``available`` with the
    names it binds.  Permissive range/UNPIVOT enumeration itself is
    total (non-collections become singletons, absent values zero
    bindings), so only the source expressions and ON need checking."""
    if isinstance(item, ast.FromJoin):
        if not _enumeration_total(item.left, available):
            return False
        if not _enumeration_total(item.right, available):
            return False
        on = item.on
        if on is not None:
            return is_relocatable(on) and free_names(on) <= available
        return True
    if isinstance(item, (ast.FromCollection, ast.FromUnpivot)):
        source = item.expr
        if not is_relocatable(source):
            return False
        if not free_names(source) <= available:
            return False
        available.update(item_vars(item))
        return True
    return False


def block_prune_reason(
    block: ast.QueryBlock,
    config: EvalConfig,
    catalog_names: Optional[Set[str]] = None,
) -> Optional[str]:
    """Why this block's FROM/WHERE pipeline may collapse to zero rows.

    Returns a human-readable reason when (a) the WHERE conjunction is
    proven never-TRUE and (b) erasing the enumeration is invisible:
    permissive typing only (strict enumeration/predicates may raise),
    every conjunct relocatable (no windows, subqueries or parameters),
    all names bound by the catalog or the block's own FROM items, and
    FROM enumeration proven total.  ``None`` means "do not prune".
    """
    if block.where is None or not block.from_ or block.lets:
        return None
    if not config.is_permissive:
        return None
    conjuncts = [
        fold_expr(conjunct, config)
        for conjunct in split_conjuncts(block.where)
    ]
    problem = never_true(conjuncts, config)
    if problem is None:
        return None
    if not all(is_relocatable(conjunct) for conjunct in conjuncts):
        return None
    available: Set[str] = set(catalog_names or ())
    for item in block.from_:
        if not _enumeration_total(item, available):
            return None
    if not free_names(block.where) <= available:
        return None
    return problem.reason


# =========================================================================
# Lint rules SQLPP120-124
# =========================================================================


def unreachable_whens(node: ast.CaseExpr, config: EvalConfig) -> List[int]:
    """Indices of CASE branches that can never produce the result."""
    searched = node.operand is None
    subject: Any = None
    if not searched:
        operand = node.operand
        assert operand is not None
        if not _is_const(operand):
            return []
        subject = _const_value(operand)
        if subject is MISSING and not config.sql_compat:
            # The whole CASE is MISSING before any branch is tried.
            return list(range(len(node.whens)))
    out: List[int] = []
    terminal = False
    for index, (condition, _result) in enumerate(node.whens):
        if terminal:
            out.append(index)
            continue
        verdict = _branch_verdict(searched, subject, condition, config)
        if verdict is _UNKNOWN:
            continue
        if verdict is True:
            terminal = True  # this branch is fine; later ones are dead
            continue
        if verdict is MISSING and not config.sql_compat:
            out.append(index)  # reaching it yields MISSING, not a result
            terminal = True
            continue
        out.append(index)  # constant non-match
    return out


def _reportable_fold(node: ast.Expr, config: EvalConfig) -> Optional[ast.Expr]:
    """The folded literal when flagging this node is useful, else None.

    Bare literals and the ``-5`` / ``+5`` parser idiom are not worth a
    finding; everything else that folds to a literal is."""
    if isinstance(node, ast.Literal):
        return None
    if isinstance(node, ast.Unary) and isinstance(node.operand, ast.Literal):
        return None
    folded = fold_expr(node, config)
    if isinstance(folded, ast.Literal) and folded is not node:
        return folded
    return None


def _foldable_findings(
    root: ast.Node, config: EvalConfig, out: List[Diagnostic]
) -> None:
    """SQLPP122 on each *maximal* constant-foldable subexpression."""

    def visit(node: ast.Node) -> None:
        if isinstance(node, ast.Expr):
            folded = _reportable_fold(node, config)
            if folded is not None:
                out.append(
                    make(
                        "SQLPP122",
                        f"`{print_ast(node)}` always evaluates to "
                        f"`{print_ast(folded)}`",
                        node.line,
                        node.column,
                        hint="the optimizer folds this to a literal; "
                        "consider writing the value directly",
                    )
                )
                return  # maximal: do not descend into reported nodes
        for child in node.children():
            visit(child)

    visit(root)


def _conjunction_findings(
    clause_name: str,
    clause: ast.Expr,
    block: Optional[ast.QueryBlock],
    flow: Optional[TypeFlow],
    env: Dict[str, AType],
    config: EvalConfig,
    out: List[Diagnostic],
) -> None:
    raw_conjuncts = split_conjuncts(clause)
    folded = [fold_expr(conjunct, config) for conjunct in raw_conjuncts]
    problem = never_true(folded, config)
    if problem is not None:
        out.append(
            make(
                "SQLPP120",
                f"the {clause_name} clause can never be TRUE: "
                f"{problem.reason}",
                problem.line if problem.line is not None else clause.line,
                problem.column
                if problem.line is not None
                else clause.column,
                hint="no binding can ever satisfy this conjunction",
            )
        )
        if clause_name == "WHERE" and block is not None and block.from_:
            out.append(
                make(
                    "SQLPP124",
                    "this query block is statically empty: its WHERE "
                    "clause is never TRUE",
                    clause.line,
                    clause.column,
                    hint="under optimize=True the planner collapses the "
                    "block to a zero-row plan (EXPLAIN shows `pruned:`)",
                )
            )
        return
    for conjunct in raw_conjuncts:
        inferred: Optional[AType] = None
        if flow is not None and isinstance(conjunct, ast.Binary):
            if _term_key(conjunct.left) is not None:
                try:
                    inferred = flow.infer(conjunct.left, env)
                except Exception:
                    inferred = None
        if tautological_conjunct(conjunct, inferred):
            out.append(
                make(
                    "SQLPP121",
                    f"`{print_ast(conjunct)}` is always TRUE for every "
                    "binding that reaches it",
                    conjunct.line,
                    conjunct.column,
                    hint="the conjunct can be removed; the planner drops "
                    "proven-true conjuncts before pushdown",
                )
            )


def predicate_diagnostics(
    core: ast.Query,
    config: EvalConfig,
    catalog_types: Optional[Dict[str, AType]] = None,
) -> List[Diagnostic]:
    """The SQLPP120-124 findings for one rewritten Core query."""
    out: List[Diagnostic] = []
    try:
        _foldable_findings(core, config, out)
    except Exception:  # pragma: no cover - lint must never break compile
        pass
    for node in core.walk():
        try:
            if isinstance(node, ast.CaseExpr):
                for index in unreachable_whens(node, config):
                    condition = node.whens[index][0]
                    out.append(
                        make(
                            "SQLPP123",
                            f"CASE branch {index + 1} can never be taken",
                            condition.line,
                            condition.column,
                            hint="the optimizer removes statically dead "
                            "CASE branches",
                        )
                    )
            elif isinstance(node, ast.QueryBlock):
                flow: Optional[TypeFlow] = None
                env: Dict[str, AType] = {}
                try:
                    flow = TypeFlow(
                        config=config, catalog_types=catalog_types or {}
                    )
                    if node.from_:
                        for item in node.from_:
                            flow._flow_from(item, env, [])
                    # Typeflow's own findings (SQLPP101-105) are emitted
                    # by the analyzer's dedicated pass; discard them.
                    flow.diagnostics.clear()
                except Exception:
                    flow = None
                if node.where is not None:
                    _conjunction_findings(
                        "WHERE", node.where, node, flow, env, config, out
                    )
                if node.having is not None:
                    _conjunction_findings(
                        "HAVING", node.having, node, flow, env, config, out
                    )
            elif isinstance(node, ast.FromJoin) and node.on is not None:
                _conjunction_findings(
                    "ON", node.on, None, None, {}, config, out
                )
        except Exception:  # pragma: no cover - lint must never break
            continue
    return out
