"""Orchestration: parse, rewrite, run the passes, apply suppressions.

``analyze`` is the library entry point (``Database.check`` and the CLI
``lint`` verb both delegate here).  Per statement of the input script:

1. a *surface pass* over the parse tree — rules about what the user
   literally wrote (duplicate struct keys, ``= NULL``, negative
   LIMIT), before the rewriter normalises it away;
2. the sugar rewrite onto the Core (failures become ``SQLPP000``
   findings, not exceptions);
3. the scope resolver over the Core tree;
4. the abstract type-flow pass over the Core tree;
5. a dry run of the semantic rewrite registry
   (:mod:`repro.core.rewrite_rules`) — each rewrite that would fire
   becomes an info-severity ``SQLPP11x`` finding whose ``fixable``
   field names the rewrite rule.

Findings are deduplicated, filtered through inline
``-- sqlpp-ignore`` comments and the caller's suppression set, and
sorted by severity then source position.  ``analyze`` never raises on
bad queries — a query the parser rejects is itself a finding.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.diagnostics import (
    Diagnostic,
    dedupe,
    filter_suppressed,
    sort_diagnostics,
)
from repro.analysis.lattice import AType
from repro.analysis.rules import make
from repro.analysis.scopes import ScopeResolver, _children
from repro.analysis.typeflow import TypeFlow
from repro.config import EvalConfig
from repro.errors import LexError, ParseError, RewriteError
from repro.syntax import ast


@dataclass
class AnalyzerOptions:
    """Everything the analyzer needs to know about its surroundings.

    All fields are optional — with none set, the analyzer checks a
    query against an empty database in the default language modes.
    """

    config: EvalConfig = field(default_factory=EvalConfig)
    catalog_names: Tuple[str, ...] = ()
    catalog_types: Dict[str, AType] = field(default_factory=dict)
    schema_attrs: Dict[str, Set[str]] = field(default_factory=dict)
    suppress: Tuple[str, ...] = ()


def _bare_message(error: Exception) -> str:
    """An exception's message without the position suffix/snippet."""
    text = str(error.args[0]) if error.args else str(error)
    return text.split(" (at line", 1)[0]


def analyze(
    source: str, options: Optional[AnalyzerOptions] = None
) -> List[Diagnostic]:
    """Statically analyze a script of ``;``-separated queries."""
    options = options if options is not None else AnalyzerOptions()
    from repro.syntax.parser import parse_script

    try:
        queries = parse_script(source)
    except (LexError, ParseError) as error:
        found = [
            make(
                "SQLPP000",
                _bare_message(error),
                line=error.line or None,
                column=error.column or None,
            )
        ]
        return filter_suppressed(found, source, options.suppress)
    found = []
    for query in queries:
        found.extend(analyze_query(query, options))
    return sort_diagnostics(filter_suppressed(dedupe(found), source, options.suppress))


def analyze_query(
    query: ast.Query, options: Optional[AnalyzerOptions] = None
) -> List[Diagnostic]:
    """Analyze one parsed (surface) query; unsorted, unsuppressed."""
    options = options if options is not None else AnalyzerOptions()
    found: List[Diagnostic] = []
    _surface_pass(query, found)

    from repro.core.rewriter import rewrite_query

    catalog_names = tuple(
        dict.fromkeys(list(options.catalog_names) + list(options.catalog_types))
    )
    try:
        core = rewrite_query(
            query,
            options.config,
            catalog_names=catalog_names,
            schema_attrs=dict(options.schema_attrs) or None,
        )
    except RewriteError as error:
        found.append(make("SQLPP000", _bare_message(error)))
        return found

    resolver = ScopeResolver(catalog_names)
    resolver.check_query(core)
    found.extend(resolver.diagnostics)

    flow = TypeFlow(config=options.config, catalog_types=options.catalog_types)
    flow.check_query(core)
    found.extend(flow.diagnostics)

    found.extend(_rewrite_pass(core, options))
    found.extend(_absint_pass(core, options))
    return found


def _absint_pass(
    core: ast.Query, options: AnalyzerOptions
) -> List[Diagnostic]:
    """The abstract-interpretation pass (SQLPP120-124): constant facts,
    contradictory/tautological conjuncts, dead CASE branches and
    statically-empty blocks, over the sugar-lowered Core tree."""
    from repro.analysis.absint import predicate_diagnostics

    try:
        return predicate_diagnostics(
            core, options.config, catalog_types=dict(options.catalog_types)
        )
    except Exception:  # pragma: no cover - lint must never raise
        return []


def _rewrite_pass(
    core: ast.Query, options: AnalyzerOptions
) -> List[Diagnostic]:
    """Dry-run the semantic rewrite registry over the Core tree.

    Each :class:`~repro.core.rewrite_rules.RewriteResult` becomes one
    info finding in the ``SQLPP11x`` range whose ``fixable`` field
    carries the rewrite code, so ``lint --json`` consumers see exactly
    which registered rewrite the engine would apply.  The dry run
    forces ``optimize``/``rewrite`` on — the point is to describe the
    opportunity even for callers that run with rewrites disabled —
    but keeps the caller's typing mode, so mode-gated rules report
    truthfully.
    """
    from repro.core import rewrite_rules

    config = replace(options.config, optimize=True, rewrite=True)
    try:
        __, fired = rewrite_rules.apply_rules(
            core, config, catalog_types=dict(options.catalog_types)
        )
    except Exception:  # pragma: no cover - lint must never raise
        return []
    found: List[Diagnostic] = []
    for result in fired:
        lint_code = rewrite_rules.RULES_BY_CODE[result.code].lint_code
        found.append(
            make(
                lint_code,
                result.detail,
                line=result.line,
                column=result.column,
                hint=(
                    f"rewritten automatically as {result.code} "
                    f"({result.name}) when rewrites are enabled"
                ),
            )
        )
    return found


# ----------------------------------------------------------------------
# The surface pass
# ----------------------------------------------------------------------


def _surface_pass(node: ast.Node, found: List[Diagnostic]) -> None:
    """Syntactic rules over the pre-rewrite tree."""
    if isinstance(node, ast.StructLit):
        _check_duplicate_keys(node, found)
    elif isinstance(node, ast.SelectList):
        _check_duplicate_aliases(node, found)
    elif isinstance(node, ast.Binary):
        _check_equals_null(node, found)
    elif isinstance(node, ast.Query):
        for clause, expr in (("LIMIT", node.limit), ("OFFSET", node.offset)):
            if expr is not None:
                _check_negative_cardinal(clause, expr, found)
    for child in _children(node):
        _surface_pass(child, found)


def _check_duplicate_keys(
    node: ast.StructLit, found: List[Diagnostic]
) -> None:
    seen: Dict[str, ast.StructField] = {}
    for struct_field in node.fields:
        key = struct_field.key
        if not (isinstance(key, ast.Literal) and isinstance(key.value, str)):
            continue
        if key.value in seen:
            found.append(
                make(
                    "SQLPP005",
                    f"duplicate attribute {key.value!r} in struct "
                    "constructor; the last occurrence wins",
                    line=struct_field.line,
                    column=struct_field.column,
                )
            )
        else:
            seen[key.value] = struct_field
    return None


def _check_duplicate_aliases(
    node: ast.SelectList, found: List[Diagnostic]
) -> None:
    seen: Set[str] = set()
    for item in node.items:
        if item.alias is None or item.star:
            continue
        if item.alias in seen:
            found.append(
                make(
                    "SQLPP005",
                    f"duplicate output attribute {item.alias!r} in "
                    "SELECT list; the last occurrence wins",
                    line=item.line,
                    column=item.column,
                )
            )
        seen.add(item.alias)


def _check_equals_null(node: ast.Binary, found: List[Diagnostic]) -> None:
    if node.op not in ("=", "!=", "<>"):
        return
    if not any(
        isinstance(side, ast.Literal) and side.value is None
        for side in (node.left, node.right)
    ):
        return
    negated = node.op != "="
    found.append(
        make(
            "SQLPP105",
            f"{node.op} NULL never yields TRUE (comparisons with NULL "
            "are unknown)",
            line=node.line,
            column=node.column,
            hint=f"use IS {'NOT ' if negated else ''}NULL",
        )
    )


def _static_number(expr: ast.Expr) -> Optional[float]:
    """The statically-known numeric value of a literal expression."""
    if isinstance(expr, ast.Literal) and isinstance(expr.value, (int, float)):
        if isinstance(expr.value, bool):
            return None
        return float(expr.value)
    if (
        isinstance(expr, ast.Unary)
        and expr.op in ("-", "+")
        and isinstance(expr.operand, ast.Literal)
    ):
        inner = _static_number(expr.operand)
        if inner is None:
            return None
        return -inner if expr.op == "-" else inner
    return None


def _check_negative_cardinal(
    clause: str, expr: ast.Expr, found: List[Diagnostic]
) -> None:
    value = _static_number(expr)
    if value is not None and value < 0:
        found.append(
            make(
                "SQLPP006",
                f"{clause} is {value:g}, which always raises at "
                "runtime (a cardinal must be non-negative)",
                line=expr.line,
                column=expr.column,
            )
        )
