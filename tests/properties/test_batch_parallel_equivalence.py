"""Property test: the batch (chunk-vectorized) executor and the morsel
fan-out preserve streaming semantics.

For randomly generated workloads — heterogeneous rows with optional
(sometimes-MISSING) attributes, filters, LET chains, joins, GROUP BY
with aggregates and HAVING — execution with ``batch=True`` (and with
``parallel=2``, thresholds forced down so the tiny tables actually
fork) must produce the same *bag* as the row-at-a-time streaming
pipeline, and the identical *list* when ORDER BY fixes a total order.

Bag comparison (not ordered) is the right contract for unordered
queries: the batch pipeline is clause-major like the eager reference
engine, so its emission order can differ from the streaming pipeline's
row-major order, but SQL++ query results without ORDER BY are bags.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import Database
from repro.core import parallel
from repro.datamodel.equality import deep_equals
from repro.datamodel.values import Bag


def row_strategy():
    return st.fixed_dictionaries(
        {},
        optional={
            "k": st.one_of(
                st.none(), st.integers(0, 4), st.sampled_from(["a", "b"])
            ),
            "j": st.integers(0, 2),
            "u": st.integers(-10, 10),
        },
    )


def with_ids(rows):
    return [dict(row, id=i) for i, row in enumerate(rows)]


def assert_bag_equal(left, right, query):
    left = Bag(list(left)) if isinstance(left, (list, Bag)) else left
    right = Bag(list(right)) if isinstance(right, (list, Bag)) else right
    assert deep_equals(left, right), f"batch parity violation for {query!r}"


def run_modes(db: Database, query: str, ordered: bool = False) -> None:
    streaming = db.execute(query, batch=False)
    assert db.metrics.last.batched is False
    batch = db.execute(query)
    parallel_result = db.execute(query, parallel=2)
    if ordered:
        assert deep_equals(list(batch), list(streaming)), query
        assert deep_equals(list(parallel_result), list(streaming)), query
    else:
        assert_bag_equal(batch, streaming, query)
        assert_bag_equal(parallel_result, streaming, query)


@pytest.fixture(autouse=True)
def forkable_fixtures(monkeypatch):
    """Tiny generated tables must still exercise the real fan-out."""
    monkeypatch.setattr(parallel, "MIN_PARALLEL_ROWS", 8)
    monkeypatch.setattr(parallel, "MIN_MORSEL_ROWS", 4)


@given(st.lists(row_strategy(), min_size=8, max_size=24))
@settings(max_examples=25, deadline=None)
def test_filter_let_project_parity(rows):
    db = Database()
    db.set("t", with_ids(rows))
    run_modes(
        db,
        "SELECT VALUE {'id': t.id, 'w': w} FROM t AS t "
        "LET w = t.u * 2 WHERE t.j >= 1 AND w > -10",
    )
    run_modes(db, "SELECT DISTINCT t.j AS j FROM t AS t")


@given(st.lists(row_strategy(), min_size=8, max_size=24))
@settings(max_examples=25, deadline=None)
def test_order_by_is_list_identical(rows):
    db = Database()
    db.set("t", with_ids(rows))
    run_modes(
        db,
        "SELECT t.id AS id, t.k AS k FROM t AS t "
        "ORDER BY t.k DESC NULLS FIRST, t.id",
        ordered=True,
    )


@given(st.lists(row_strategy(), min_size=8, max_size=24))
@settings(max_examples=25, deadline=None)
def test_group_by_aggregates_parity(rows):
    db = Database()
    db.set("t", with_ids(rows))
    run_modes(
        db,
        "SELECT j, COUNT(*) AS n, SUM(t.u) AS total, AVG(t.u) AS mean "
        "FROM t AS t GROUP BY t.j AS j HAVING COUNT(*) >= 1",
    )
    run_modes(
        db,
        "SELECT k, (SELECT VALUE e.t.u FROM g AS e) AS members "
        "FROM t AS t GROUP BY t.k AS k GROUP AS g",
    )


@given(
    st.lists(row_strategy(), min_size=8, max_size=20),
    st.lists(row_strategy(), min_size=1, max_size=8),
    st.sampled_from(["JOIN", "LEFT JOIN"]),
)
@settings(max_examples=20, deadline=None)
def test_join_parity(left, right, kind):
    db = Database()
    db.set("lt", with_ids(left))
    db.set("rt", with_ids(right))
    run_modes(
        db,
        "SELECT l.id AS lid, r.id AS rid, r.u AS u FROM lt AS l "
        f"{kind} rt AS r ON l.k = r.k WHERE l.j >= 1",
    )
