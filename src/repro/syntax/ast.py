"""Abstract syntax tree for SQL++.

All nodes are dataclasses deriving from :class:`Node`.  The tree is
deliberately close to the surface language; the rewriter
(:mod:`repro.core.rewriter`) transforms SQL-sugar forms (plain ``SELECT``
lists, SQL aggregate calls, implicit grouping, subquery coercion hints)
into SQL++ Core forms (``SELECT VALUE``, ``COLL_*`` over ``GROUP AS``
groups) before evaluation, exactly as the paper describes SQL being
"syntactic sugar" over the Core (Section I).

Generic traversal: :meth:`Node.children` yields child nodes and
:meth:`Node.transform` rebuilds a node bottom-up through a callback, both
derived automatically from dataclass fields, so rewrite passes stay short.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, List, Optional, Tuple, TypeVar


@dataclass
class Node:
    """Base class of every AST node.

    ``line``/``column`` are the 1-based source position of the token the
    node started at, or ``None`` for synthesized nodes (rewriter output
    inherits its origin's span via :func:`copy_span`).  They are
    ``compare=False`` so AST equality stays structural — two parses of
    the same text compare equal even when whitespace shifts positions —
    and ``kw_only`` so every subclass's positional constructor is
    unchanged.
    """

    line: Optional[int] = field(
        default=None, compare=False, repr=False, kw_only=True
    )
    column: Optional[int] = field(
        default=None, compare=False, repr=False, kw_only=True
    )

    def children(self) -> Iterator["Node"]:
        """Yield every direct child node (recursing into lists/tuples)."""
        for fld in dataclasses.fields(self):
            yield from _nodes_in(getattr(self, fld.name))

    def walk(self) -> Iterator["Node"]:
        """Yield this node and every descendant, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()

    def transform(self, fn: Callable[["Node"], "Node"]) -> "Node":
        """Rebuild the tree bottom-up, applying ``fn`` to every node.

        Children are transformed first, then ``fn`` is applied to the
        (possibly rebuilt) node itself.  Nodes are never mutated in place;
        untouched subtrees are shared.
        """
        changes = {}
        for fld in dataclasses.fields(self):
            old = getattr(self, fld.name)
            new = _transform_value(old, fn)
            if new is not old:
                changes[fld.name] = new
        node = dataclasses.replace(self, **changes) if changes else self
        return fn(node)


def _nodes_in(value: Any) -> Iterator[Node]:
    if isinstance(value, Node):
        yield value
    elif isinstance(value, (list, tuple)):
        for item in value:
            yield from _nodes_in(item)


NodeT = TypeVar("NodeT", bound=Node)


def copy_span(target: NodeT, source: Node) -> NodeT:
    """Stamp ``source``'s span onto ``target`` unless it already has one.

    Used by the rewriter so that synthesized Core nodes (lowered SELECT
    lists, ``COLL_*`` aggregates, coercion wrappers) point diagnostics at
    the user's original surface syntax.
    """
    if target.line is None and source.line is not None:
        target.line = source.line
        target.column = source.column
    return target


def copy_span_tree(target: NodeT, source: Node) -> NodeT:
    """Stamp ``source``'s span onto every unstamped node under ``target``.

    The deep cousin of :func:`copy_span`: rewrite rules synthesize whole
    subtrees (a decorrelated join arm, an IN-list, a hoisted LET), and a
    single-node stamp would leave the nested nodes span-less.  Nodes that
    already carry a span — shared subtrees lifted from the user's query —
    are left untouched, so diagnostics keep pointing at the most precise
    position available.
    """
    if source.line is None:
        return target
    for node in target.walk():
        if node.line is None:
            node.line = source.line
            node.column = source.column
    return target


def _transform_value(value: Any, fn: Callable[[Node], Node]) -> Any:
    if isinstance(value, Node):
        return value.transform(fn)
    if isinstance(value, list):
        new_items = [_transform_value(item, fn) for item in value]
        if all(new is old for new, old in zip(new_items, value)):
            return value
        return new_items
    if isinstance(value, tuple):
        new_items = tuple(_transform_value(item, fn) for item in value)
        if all(new is old for new, old in zip(new_items, value)):
            return value
        return new_items
    return value


# =========================================================================
# Expressions
# =========================================================================


@dataclass
class Expr(Node):
    """Base class of expression nodes."""


@dataclass
class Literal(Expr):
    """A scalar literal, ``NULL`` (value None) or ``MISSING``.

    ``MISSING`` is represented by the data-model singleton as the value.
    """

    value: Any


@dataclass
class VarRef(Expr):
    """A bare name.

    Resolved at evaluation time against the binding environment first and
    the database catalog second (names may be dotted via :class:`Path`,
    e.g. ``hr.emp``, matching the paper's namespaced named values).
    """

    name: str


@dataclass
class Path(Expr):
    """Dot navigation ``base.attr`` (``attr`` is the literal name)."""

    base: Expr
    attr: str


@dataclass
class Index(Expr):
    """Bracket navigation ``base[index]``."""

    base: Expr
    index: Expr


@dataclass
class PathWildcard(Expr):
    """A deep-path step: ``base[*]`` or ``base.*``.

    An extension shared by the SQL++ dialects (PartiQL path wildcards):
    ``e.projects[*].name`` evaluates to the collection of ``.name``
    navigations over the elements of ``e.projects``.  ``kind`` is
    ``'values'`` for ``[*]`` (elements of a collection) or ``'attrs'``
    for ``.*`` (attribute values of a tuple).  Path steps *after* a
    wildcard apply per element, which the parser expresses by nesting:
    the wildcard node's ``steps`` records the trailing navigation.
    """

    base: Expr
    kind: str
    steps: List["PathStep"] = field(default_factory=list)


@dataclass
class PathStep(Node):
    """One trailing navigation step after a path wildcard.

    ``attr`` is set for ``.name`` steps; ``index`` for ``[i]`` steps;
    ``wildcard`` for a further ``[*]``/``.*`` (flattening one level).
    """

    attr: Optional[str] = None
    index: Optional[Expr] = None
    wildcard: Optional[str] = None


@dataclass
class StructField(Node):
    """One ``key : value`` entry of a struct constructor.

    ``key`` is an expression: string literals and bare identifiers parse
    to :class:`Literal` strings; computed keys are allowed (PIVOT-style
    construction).
    """

    key: Expr
    value: Expr


@dataclass
class StructLit(Expr):
    """A struct (tuple) constructor ``{ k1: v1, ... }``."""

    fields: List[StructField]


@dataclass
class ArrayLit(Expr):
    """An array constructor ``[ e1, ... ]``."""

    items: List[Expr]


@dataclass
class BagLit(Expr):
    """A bag constructor ``<< e1, ... >>`` or ``{{ e1, ... }}``."""

    items: List[Expr]


@dataclass
class Unary(Expr):
    """Unary operator: ``-``, ``+`` or ``NOT``."""

    op: str
    operand: Expr


@dataclass
class Binary(Expr):
    """Binary operator.

    ``op`` is one of ``OR AND = != < <= > >= || + - * / %``.
    """

    op: str
    left: Expr
    right: Expr


@dataclass
class IsPredicate(Expr):
    """``expr IS [NOT] NULL | MISSING | <typename>``."""

    operand: Expr
    kind: str  # 'NULL', 'MISSING', or a type name like 'INTEGER'
    negated: bool = False


@dataclass
class Like(Expr):
    """``expr [NOT] LIKE pattern [ESCAPE esc]``."""

    operand: Expr
    pattern: Expr
    escape: Optional[Expr] = None
    negated: bool = False


@dataclass
class Between(Expr):
    """``expr [NOT] BETWEEN low AND high``."""

    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False


@dataclass
class InPredicate(Expr):
    """``expr [NOT] IN rhs`` where rhs is a collection or subquery."""

    operand: Expr
    collection: Expr
    negated: bool = False


@dataclass
class Exists(Expr):
    """``EXISTS expr`` — true when the collection is non-empty."""

    operand: Expr


@dataclass
class CaseExpr(Expr):
    """Simple or searched ``CASE``.

    ``operand`` is None for the searched form (``CASE WHEN cond ...``).
    """

    operand: Optional[Expr]
    whens: List[Tuple[Expr, Expr]]
    else_: Optional[Expr] = None


@dataclass
class FunctionCall(Expr):
    """A (possibly aggregate) function call.

    ``star`` marks ``COUNT(*)``; ``distinct`` marks ``COUNT(DISTINCT x)``
    etc.  Whether the name denotes a SQL aggregate (``AVG``), a composable
    Core aggregate (``COLL_AVG``) or a scalar function is decided by the
    function registry, not the parser.
    """

    name: str
    args: List[Expr]
    distinct: bool = False
    star: bool = False


@dataclass
class OrderItem(Node):
    """One ``ORDER BY`` key."""

    expr: Expr
    desc: bool = False
    nulls_first: Optional[bool] = None  # None = SQL default (first if ASC)


@dataclass
class WindowSpec(Node):
    """The ``OVER (PARTITION BY ... ORDER BY ...)`` specification."""

    partition_by: List[Expr] = field(default_factory=list)
    order_by: List[OrderItem] = field(default_factory=list)


@dataclass
class WindowCall(Expr):
    """``fn(args) OVER (window-spec)``."""

    call: FunctionCall
    spec: WindowSpec


@dataclass
class SubqueryExpr(Expr):
    """A parenthesised query used as an expression.

    ``coercion`` records the syntactic context for SQL-compatibility-mode
    coercion of plain-``SELECT`` subqueries (paper, Section V-A):

    * ``'scalar'`` — comparison/arithmetic position: coerce the singleton
      collection of a single-attribute tuple to that scalar;
    * ``'collection'`` — right-hand side of ``IN``: coerce a collection of
      single-attribute tuples to a collection of values;
    * ``None`` — no coercion (e.g. a FROM source or a SELECT VALUE body).

    The rewriter turns these hints into explicit coercion nodes only when
    SQL-compatibility mode is on; ``SELECT VALUE`` subqueries are never
    coerced.
    """

    query: "Query"
    coercion: Optional[str] = None


@dataclass
class CoerceSubquery(Expr):
    """Explicit coercion inserted by the rewriter in SQL-compat mode."""

    query: "Query"
    mode: str  # 'scalar' or 'collection'


@dataclass
class Parameter(Expr):
    """A positional ``?`` parameter."""

    index: int


@dataclass
class CastExpr(Expr):
    """``CAST(expr AS typename)``."""

    operand: Expr
    type_name: str


# =========================================================================
# Query blocks and clauses
# =========================================================================


@dataclass
class FromItem(Node):
    """Base class of FROM-clause items."""


@dataclass
class FromCollection(FromItem):
    """``expr AS var [AT posvar]`` — range over a collection.

    The FROM variable binds to *any* kind of value, not just tuples
    (paper, Section III-A).  ``expr`` may refer to variables bound by
    earlier items in the same FROM clause (left-correlation).
    """

    expr: Expr
    alias: str
    at_alias: Optional[str] = None


@dataclass
class FromUnpivot(FromItem):
    """``UNPIVOT expr AS valuevar AT namevar`` (paper, Section VI-A).

    Ranges over the attribute name/value pairs of a tuple, binding
    ``valuevar`` to the value and ``namevar`` to the attribute name.
    """

    expr: Expr
    value_alias: str
    at_alias: str


@dataclass
class FromJoin(FromItem):
    """Explicit ``JOIN`` syntax between two FROM items.

    ``kind`` is ``'INNER'``, ``'LEFT'`` or ``'CROSS'``.  ``on`` is None
    for CROSS joins.  ``lateral`` unnesting is expressed by the right
    side's expression referring to left-side variables, same as comma
    items (UNNEST sugar parses to this shape too).
    """

    left: FromItem
    right: FromItem
    kind: str
    on: Optional[Expr] = None


@dataclass
class LetBinding(Node):
    """``LET name = expr`` — extends the current bindings."""

    name: str
    expr: Expr


@dataclass
class GroupKey(Node):
    """One ``GROUP BY`` key with its binding alias."""

    expr: Expr
    alias: str


@dataclass
class GroupByClause(Node):
    """``GROUP BY keys [GROUP AS gvar]``.

    ``mode`` is ``'simple'``, ``'rollup'``, ``'cube'`` or ``'sets'``; for
    ``'sets'``, ``grouping_sets`` lists index-tuples into ``keys``.
    ``group_as`` exposes each group's content as a collection of tuples of
    the input bindings (paper, Section V-B).
    """

    keys: List[GroupKey]
    group_as: Optional[str] = None
    mode: str = "simple"
    grouping_sets: Optional[List[List[int]]] = None


@dataclass
class SelectItem(Node):
    """One projection item of a sugar ``SELECT`` list.

    ``alias`` None means the output name is inferred from the expression
    (last path step / variable name) or positionally (``_1``, ``_2``...).
    ``star`` marks ``v.*`` items, which splice a tuple's attributes.
    """

    expr: Expr
    alias: Optional[str] = None
    star: bool = False


@dataclass
class SelectClause(Node):
    """Base class of the SELECT-position clauses."""


@dataclass
class SelectValue(SelectClause):
    """Core ``SELECT VALUE expr`` — outputs the bare value per binding."""

    expr: Expr
    distinct: bool = False


@dataclass
class SelectList(SelectClause):
    """Sugar ``SELECT e1 AS a1, ...`` — rewritten to ``SELECT VALUE {...}``."""

    items: List[SelectItem]
    distinct: bool = False


@dataclass
class SelectStar(SelectClause):
    """Sugar ``SELECT *`` — splices every in-scope binding's attributes."""

    distinct: bool = False


@dataclass
class PivotClause(SelectClause):
    """``PIVOT value_expr AT name_expr`` — constructs a single tuple from
    the binding stream (paper, Section VI-B)."""

    value: Expr
    at: Expr


@dataclass
class QueryBlock(Node):
    """A single SELECT/FROM/WHERE/GROUP BY/HAVING block.

    ``select_first`` records only the surface clause order (SQL++ allows
    the SELECT clause at either end, Section V-B); semantics are
    identical.
    """

    select: SelectClause
    from_: Optional[List[FromItem]] = None
    lets: List[LetBinding] = field(default_factory=list)
    where: Optional[Expr] = None
    group_by: Optional[GroupByClause] = None
    having: Optional[Expr] = None
    select_first: bool = True


@dataclass
class SetOp(Node):
    """``left UNION|INTERSECT|EXCEPT [ALL] right`` over query bodies."""

    op: str
    all: bool
    left: Node  # QueryBlock | SetOp | Query
    right: Node


@dataclass
class Query(Node):
    """A full query: a body plus the post-SELECT clauses.

    ``body`` is a :class:`QueryBlock`, :class:`SetOp` or a bare
    :class:`Expr` (SQL++ is an expression language: ``SELECT VALUE 1`` and
    ``1 + 1`` are both valid queries).
    """

    body: Node
    order_by: List[OrderItem] = field(default_factory=list)
    limit: Optional[Expr] = None
    offset: Optional[Expr] = None
