"""Cardinality feedback (docs/OBSERVABILITY.md "Query store &
cardinality feedback"): observed scan/join actuals recorded as
:class:`~repro.catalog.statistics.FeedbackHints` override the sampled
estimates on the next planning of the same shape — so a join order
chosen from a misestimate corrects itself on the second execution.
"""

from __future__ import annotations

import pytest

from repro import Database
from repro.catalog.statistics import FeedbackHints
from repro.datamodel.equality import deep_equals
from repro.datamodel.values import Bag

#: The statistics sampler reads the first 1024 rows.  Making those
#: distinct on ``k`` while the tail is constant (-1) gives the planner
#: an estimate of ~1 row for ``a.k = -1`` when the truth is 3976.
A_ROWS = [
    {"k": i if i < 1024 else -1, "bid": i % 600, "v": i} for i in range(5000)
]
B_ROWS = [{"id": i, "name": f"b{i}"} for i in range(600)]

FLIP_QUERY = (
    "SELECT a.v AS v, b.name AS name FROM a AS a "
    "JOIN b AS b ON a.bid = b.id WHERE a.k = -1"
)


def build_db(**kwargs) -> Database:
    db = Database(**kwargs)
    db.set("a", A_ROWS)
    db.set("b", B_ROWS)
    return db


class TestJoinOrderFlip:
    def test_second_execution_corrects_join_order(self):
        db = build_db()
        # Before any execution: the sample says the filtered scan of
        # ``a`` yields ~1 row, so the greedy order builds on ``b``.
        before = db.explain_plan(FLIP_QUERY)
        assert "order: b ⋈ a (syntactic: a ⋈ b)" in before, before

        first = db.execute(FLIP_QUERY)
        assert len(first) == 3976

        # The sampled feedback run recorded the scan's actual 3976 rows;
        # the next planning prefers the hint and flips the build side.
        after = db.explain_plan(FLIP_QUERY)
        assert "order: a ⋈ b (syntactic)" in after, after

        second = db.execute(FLIP_QUERY)
        assert deep_equals(Bag(list(first)), Bag(list(second)))

    def test_flip_is_recorded_as_plan_change(self):
        db = build_db()
        db.execute(FLIP_QUERY)
        db.execute(FLIP_QUERY)
        store = db.query_store()
        entry = store.entry(db.metrics.last.fingerprint)
        assert entry.plan_changes == 1
        assert len(entry.plan_hashes) == 2
        assert any(e["event"] == "plan-change" for e in store.events())

    def test_data_change_invalidates_hints(self):
        db = build_db()
        db.execute(FLIP_QUERY)
        assert "order: a ⋈ b" in db.explain_plan(FLIP_QUERY)
        # Mutating the collection bumps data_version: stale actuals are
        # dropped and planning falls back to fresh sampled estimates.
        db.set("a", [{"k": i, "bid": i % 600, "v": i} for i in range(5000)])
        assert db._stats.feedback_rows("scan|a|(a.k = -1)") is None

    def test_feedback_skipped_under_limit(self):
        # A LIMIT-truncated run must not poison the hints with partial
        # counts.
        db = build_db()
        db.execute(FLIP_QUERY + " LIMIT 5")
        assert db._stats.feedback_rows("scan|a|(a.k = -1)") is None

    def test_store_disabled_means_no_feedback(self):
        db = build_db(query_store=False)
        db.execute(FLIP_QUERY)
        assert "order: b ⋈ a" in db.explain_plan(FLIP_QUERY)


class TestFeedbackHints:
    def test_record_and_lookup(self):
        hints = FeedbackHints()
        assert hints.record("scan|a|f", 100.0, data_version=1)
        assert hints.rows_for("scan|a|f", data_version=1) == 100.0
        assert hints.rows_for("scan|a|f", data_version=2) is None
        assert hints.rows_for("scan|a|other", data_version=1) is None

    def test_tolerance_suppresses_noise(self):
        hints = FeedbackHints()
        assert hints.record("k", 100.0, data_version=1)
        version = hints.version
        # Within 10%: stored, but no plan-relevant version bump.
        assert not hints.record("k", 105.0, data_version=1)
        assert hints.version == version
        assert hints.rows_for("k", data_version=1) == 105.0
        # Beyond 10%: replan.
        assert hints.record("k", 200.0, data_version=1)
        assert hints.version > version

    def test_data_version_change_clears(self):
        hints = FeedbackHints()
        hints.record("k", 100.0, data_version=1)
        version = hints.version
        hints.record("other", 5.0, data_version=2)
        assert hints.rows_for("k", data_version=2) is None
        assert hints.version > version

    def test_bounded_retention(self):
        hints = FeedbackHints()
        for i in range(FeedbackHints.MAX_HINTS + 10):
            hints.record(f"k{i}", float(i + 1), data_version=1)
        assert len(hints) == FeedbackHints.MAX_HINTS
        assert hints.rows_for("k0", data_version=1) is None
        last = FeedbackHints.MAX_HINTS + 9
        assert hints.rows_for(f"k{last}", data_version=1) == float(last + 1)


class TestProviderFeedback:
    def test_feedback_version_bumps_invalidate_plan_cache(self):
        # The evaluator keys cached plans on (data_version,
        # feedback_version); a fresh hint must replan exactly once.
        db = build_db()
        version = db._stats.feedback_version
        db.execute(FLIP_QUERY)
        assert db._stats.feedback_version > version

    def test_second_execution_not_retraced(self):
        db = build_db()
        store = db.query_store()
        db.execute(FLIP_QUERY)
        fingerprint = db.metrics.last.fingerprint
        assert not store.wants_feedback(fingerprint, db.catalog.data_version)
        db.set("b", B_ROWS + [{"id": 600, "name": "b600"}])
        assert store.wants_feedback(fingerprint, db.catalog.data_version)
