"""The catalog: dotted names → SQL++ values.

Names are identifiers or dotted identifiers (``hr.emp``), reflecting a
database/table or schema/table hierarchy (paper, Section II).  Values
are stored in model form; plain Python data passed in is converted via
:func:`repro.datamodel.from_python`.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List

from repro.datamodel.convert import from_python
from repro.errors import CatalogError

_NAME_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_$"
)


def validate_name(name: str) -> str:
    """Check that a catalog name is a (dotted) identifier; return it."""
    if not name:
        raise CatalogError("catalog names must be non-empty")
    for part in name.split("."):
        if not part or not all(char in _NAME_CHARS for char in part):
            raise CatalogError(f"invalid catalog name {name!r}")
        if part[0].isdigit():
            raise CatalogError(f"invalid catalog name {name!r}")
    return name


class Catalog:
    """A mutable mapping of dotted names to SQL++ values."""

    def __init__(self) -> None:
        self._values: Dict[str, Any] = {}
        #: Bumped on every name-set change; lets callers (the Database
        #: query cache) key compiled plans to a catalog snapshot, since
        #: rewriting consults the set of catalog names.
        self.version = 0
        #: Bumped on *every* mutation, including replacing the value
        #: under an existing name.  Collection statistics
        #: (:mod:`repro.catalog.statistics`) and the cost-based join
        #: order derived from them are keyed to this, since they depend
        #: on the data itself, not just the name set.
        self.data_version = 0

    def set(self, name: str, value: Any) -> None:
        """Create or replace a named value (converted to model form)."""
        if validate_name(name) not in self._values:
            self.version += 1
        self.data_version += 1
        self._values[name] = from_python(value)

    def set_model(self, name: str, value: Any) -> None:
        """Create or replace a named value that is already in model form
        (skips conversion; used by callers that validated the value)."""
        if validate_name(name) not in self._values:
            self.version += 1
        self.data_version += 1
        self._values[name] = value

    def get(self, name: str) -> Any:
        try:
            return self._values[name]
        except KeyError:
            raise CatalogError(f"unknown named value {name!r}") from None

    def drop(self, name: str) -> None:
        if name not in self._values:
            raise CatalogError(f"unknown named value {name!r}")
        del self._values[name]
        self.version += 1
        self.data_version += 1

    def names(self) -> List[str]:
        return sorted(self._values)

    def __contains__(self, name: object) -> bool:
        return name in self._values

    def __getitem__(self, name: str) -> Any:
        return self.get(name)

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._values))

    def __len__(self) -> int:
        return len(self._values)

    def namespace(self, prefix: str) -> List[str]:
        """Names under a dotted prefix (``hr`` → ``hr.emp``, ...)."""
        dotted = prefix + "."
        return [name for name in self.names() if name.startswith(dotted)]
