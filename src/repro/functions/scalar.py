"""General-purpose scalar builtins: absence handling, types, casting.

The ``COALESCE`` family implements the Section IV-B exception: SQL's
``COALESCE(NULL, 2)`` returns 2, so in SQL-compatibility mode
``COALESCE(MISSING, 2)`` must also return 2.  In pure Core mode (the
composability-first setting) a MISSING input propagates instead.
"""

from __future__ import annotations

from typing import Any, List

from repro.config import EvalConfig
from repro.datamodel.values import MISSING, Bag, Struct, type_name
from repro.errors import EvaluationError
from repro.functions.registry import builtin


@builtin("COALESCE", 1, None, propagate_absent=False)
def coalesce(args: List[Any], config: EvalConfig) -> Any:
    """First non-absent argument.

    NULL arguments are always skipped.  A MISSING argument is skipped in
    SQL-compatibility mode (Section IV-B exception) but propagates as
    MISSING in Core mode.  All arguments absent → NULL (SQL behaviour).
    """
    for arg in args:
        if arg is None:
            continue
        if arg is MISSING:
            if config.sql_compat:
                continue
            return MISSING
        return arg
    return None


@builtin("IFNULL", 2, 2, propagate_absent=False)
def ifnull(args: List[Any], config: EvalConfig) -> Any:
    """``IFNULL(x, default)`` — default when x is NULL (MISSING passes through)."""
    value, default = args
    return default if value is None else value


@builtin("IFMISSING", 2, 2, propagate_absent=False)
def ifmissing(args: List[Any], config: EvalConfig) -> Any:
    """``IFMISSING(x, default)`` — default when x is MISSING."""
    value, default = args
    return default if value is MISSING else value


@builtin("IFMISSINGORNULL", 2, 2, propagate_absent=False)
def ifmissingornull(args: List[Any], config: EvalConfig) -> Any:
    """``IFMISSINGORNULL(x, default)`` — default when x is absent."""
    value, default = args
    return default if value is None or value is MISSING else value


@builtin("NULLIF", 2, 2, propagate_absent=False)
def nullif(args: List[Any], config: EvalConfig) -> Any:
    """``NULLIF(a, b)`` — NULL when a = b, else a."""
    from repro.functions.operators import equals

    left, right = args
    if left is MISSING:
        return MISSING
    verdict = equals(left, right, config)
    if verdict is True:
        return None
    return left


@builtin("MISSINGIF", 2, 2, propagate_absent=False)
def missingif(args: List[Any], config: EvalConfig) -> Any:
    """``MISSINGIF(a, b)`` — MISSING when a = b, else a (Couchbase-style)."""
    from repro.functions.operators import equals

    left, right = args
    if left is MISSING:
        return MISSING
    verdict = equals(left, right, config)
    if verdict is True:
        return MISSING
    return left


@builtin("TYPEOF", 1, 1, propagate_absent=False)
def typeof(args: List[Any], config: EvalConfig) -> str:
    """The SQL++ type name of the argument (``'missing'`` for MISSING)."""
    return type_name(args[0])


def cast_value(value: Any, target: str, config: EvalConfig) -> Any:
    """Implementation of ``CAST(x AS target)``.

    NULL casts to NULL and MISSING to MISSING (absence survives casting).
    A failed conversion is a dynamic type error (MISSING / raise).
    """
    if value is MISSING:
        return MISSING
    if value is None:
        return None
    target = target.upper()
    try:
        if target in ("INTEGER", "INT", "BIGINT", "SMALLINT"):
            if isinstance(value, bool):
                return int(value)
            if isinstance(value, (int, float)):
                return int(value)
            if isinstance(value, str):
                return int(value.strip())
        elif target in ("FLOAT", "DOUBLE", "REAL", "DECIMAL"):
            if isinstance(value, bool):
                return float(value)
            if isinstance(value, (int, float)):
                return float(value)
            if isinstance(value, str):
                return float(value.strip())
        elif target in ("STRING", "VARCHAR", "CHAR", "TEXT"):
            return to_string_value(value)
        elif target in ("BOOLEAN", "BOOL"):
            if isinstance(value, bool):
                return value
            if isinstance(value, str):
                lowered = value.strip().lower()
                if lowered in ("true", "t", "1"):
                    return True
                if lowered in ("false", "f", "0"):
                    return False
                raise ValueError(f"cannot parse boolean from {value!r}")
            if isinstance(value, (int, float)):
                return bool(value)
        else:
            raise EvaluationError(f"unknown CAST target type {target}")
    except (TypeError, ValueError):
        return config.type_error(f"cannot cast {type_name(value)} to {target}")
    return config.type_error(f"cannot cast {type_name(value)} to {target}")


def to_string_value(value: Any) -> str:
    """Render a scalar as a string the way SQL++ text output does."""
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, (int, float, str)):
        return str(value)
    raise ValueError(f"cannot convert {type_name(value)} to string")


@builtin("TO_STRING", 1, 1)
def to_string(args: List[Any], config: EvalConfig) -> Any:
    return to_string_value(args[0])


@builtin("ATTRIBUTE_NAMES", 1, 1)
def attribute_names(args: List[Any], config: EvalConfig) -> Any:
    """The attribute names of a tuple, as an array of strings."""
    value = args[0]
    if not isinstance(value, Struct):
        return config.type_error(
            f"ATTRIBUTE_NAMES expects a tuple, got {type_name(value)}"
        )
    return value.keys()


@builtin("TUPLE_UNION", 2, None)
def tuple_union(args: List[Any], config: EvalConfig) -> Any:
    """Concatenate the attribute pairs of two or more tuples."""
    result = Struct()
    for value in args:
        if not isinstance(value, Struct):
            return config.type_error(
                f"TUPLE_UNION expects tuples, got {type_name(value)}"
            )
        result = result.merged(value)
    return result


@builtin("GREATEST", 2, None)
def greatest(args: List[Any], config: EvalConfig) -> Any:
    """Largest of the arguments (pairwise comparable scalars)."""
    from repro.functions.operators import compare

    best = args[0]
    for value in args[1:]:
        if compare(">", value, best, config) is True:
            best = value
    return best


@builtin("LEAST", 2, None)
def least(args: List[Any], config: EvalConfig) -> Any:
    """Smallest of the arguments (pairwise comparable scalars)."""
    from repro.functions.operators import compare

    best = args[0]
    for value in args[1:]:
        if compare("<", value, best, config) is True:
            best = value
    return best


# Couchbase/AsterixDB-style aliases seen in SQL++ dialects.
from repro.functions.registry import REGISTRY  # noqa: E402

REGISTRY.alias("IFNULL", "NVL")
REGISTRY.alias("TYPEOF", "TYPE")


@builtin("BAG", 0, None, propagate_absent=False)
def bag_constructor(args: List[Any], config: EvalConfig) -> Bag:
    """Function-style bag constructor: ``BAG(1, 2, 3)``."""
    return Bag(arg for arg in args if arg is not MISSING)
