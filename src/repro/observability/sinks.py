"""Metrics sinks: where per-query :class:`QueryMetrics` records go.

Two built-ins cover the common deployments:

* :class:`InMemorySink` — a bounded ring buffer, always attached by
  default; powers the REPL's ``.stats`` and tests.
* :class:`JsonLinesSink` — an append-only JSON-lines file, optionally
  thresholded so only *slow* queries are persisted (the classic
  slow-query log).

Anything with an ``emit(metrics)`` method is a valid sink, so embedders
can forward metrics to statsd/OTel/etc. without this package growing
those dependencies.  A sink may additionally provide ``close()``;
:meth:`MetricsRegistry.close` (and therefore ``Database.close``) calls
it on teardown.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Deque, List, Optional, TextIO, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.observability.metrics import QueryMetrics


class InMemorySink:
    """Keeps the most recent ``capacity`` query metrics in memory."""

    def __init__(self, capacity: int = 128):
        self.records: Deque["QueryMetrics"] = deque(maxlen=capacity)

    def emit(self, metrics: "QueryMetrics") -> None:
        self.records.append(metrics)

    def tail(self, count: int = 10) -> List["QueryMetrics"]:
        return list(self.records)[-count:]


class JsonLinesSink:
    """Appends one JSON object per query to a log file.

    ``threshold_s`` turns the sink into a slow-query log: only queries
    whose total wall time reaches the threshold are written (errors and
    resource-exhausted queries are always written — those are exactly
    the ones an operator wants to see).

    The file handle is opened lazily on the first written record and
    kept open across emits (reopening per record made every logged
    query pay an open/close syscall pair); each record is flushed so a
    crashed process loses nothing.  ``close()`` releases the handle —
    ``Database.close()`` does this for registry-attached sinks — and a
    later emit transparently reopens it.
    """

    def __init__(self, path: str, threshold_s: float = 0.0):
        self.path = path
        self.threshold_s = threshold_s
        self._handle: Optional[TextIO] = None

    def emit(self, metrics: "QueryMetrics") -> None:
        if metrics.status == "ok" and metrics.total_s < self.threshold_s:
            return
        if self._handle is None:
            self._handle = open(self.path, "a")
        self._handle.write(json.dumps(metrics.to_dict(), sort_keys=True))
        self._handle.write("\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
