"""Format independence (tenet 5): one query, N formats, one answer.

Also property-based round-trips through every codec.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import Database
from repro.datamodel.convert import from_python
from repro.datamodel.equality import deep_equals
from repro.datamodel.values import Bag
from repro.errors import FormatError
from repro.formats import cbor_io, ion_io, json_io, sqlpp_text
from repro.formats.registry import FORMATS, read_text, write_text

DOCUMENTS = [
    {"symbol": "amzn", "price": 1900, "tags": ["tech", "retail"]},
    {"symbol": "goog", "price": 1120, "tags": ["tech"]},
    {"symbol": "fb", "price": 180, "tags": []},
]

QUERY = (
    "SELECT r.symbol AS s, t AS t FROM prices AS r, r.tags AS t "
    "WHERE r.price > 1000"
)


class TestOneQueryManyFormats:
    def reference_result(self):
        db = Database()
        db.set("prices", DOCUMENTS)
        return db.execute(QUERY)

    @pytest.mark.parametrize("format_name", ["json", "cbor", "ion", "sqlpp"])
    def test_same_answer_through_every_format(self, format_name):
        model = from_python(DOCUMENTS)
        encoded = write_text(Bag(model), format_name)
        decoded = read_text(encoded, format_name)
        db = Database()
        db.set("prices", decoded)
        assert deep_equals(db.execute(QUERY), self.reference_result())

    def test_csv_flat_projection_matches(self):
        # CSV cannot hold the nested tags; the flat part must agree.
        flat = [{k: v for k, v in doc.items() if k != "tags"} for doc in DOCUMENTS]
        encoded = write_text(from_python([from_python(d) for d in flat]), "csv")
        db = Database()
        db.set("prices", read_text(encoded, "csv"))
        result = db.execute("SELECT VALUE r.symbol FROM prices AS r WHERE r.price > 1000")
        assert sorted(result) == ["amzn", "goog"]


class TestRegistry:
    def test_known_formats(self):
        assert set(FORMATS) >= {"sqlpp", "json", "csv", "cbor", "ion"}

    def test_unknown_format(self):
        with pytest.raises(FormatError):
            read_text("x", "parquet")

    def test_file_round_trip_by_extension(self, tmp_path):
        from repro.formats.registry import read_file, write_file

        value = from_python([{"a": 1}])
        for extension in (".json", ".cbor", ".ion", ".sqlpp"):
            path = str(tmp_path / f"data{extension}")
            write_file(Bag(value), path)
            assert deep_equals(read_file(path), Bag(value))

    def test_unknown_extension(self, tmp_path):
        from repro.formats.registry import read_file

        with pytest.raises(FormatError):
            read_file(str(tmp_path / "x.parquet"))

    def test_database_load_dump(self, tmp_path):
        db = Database()
        db.set("t", [{"a": 1}])
        path = str(tmp_path / "t.json")
        db.dump("t", path)
        db.load("t2", path)
        assert deep_equals(Bag(db.get("t")) if not isinstance(db.get("t"), Bag) else db.get("t"), db.get("t2"))


# -- property-based round trips ----------------------------------------------

json_like = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(2**40), max_value=2**40),
        st.floats(allow_nan=False, allow_infinity=False),
        st.text(max_size=10),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(
            st.text(max_size=6), children, max_size=4
        ),
    ),
    max_leaves=15,
)


@given(json_like)
@settings(max_examples=80)
def test_cbor_round_trip_property(data):
    value = from_python(data)
    assert deep_equals(cbor_io.loads(cbor_io.dumps(value)), value)


@given(json_like)
@settings(max_examples=80)
def test_json_round_trip_property(data):
    value = from_python(data)
    decoded = json_io.loads(json_io.dumps(value), top_level_bag=False)
    assert deep_equals(decoded, value)


@given(json_like)
@settings(max_examples=80)
def test_sqlpp_literal_round_trip_property(data):
    value = from_python(data)
    assert deep_equals(sqlpp_text.loads(sqlpp_text.dumps(value)), value)


ion_safe = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(2**40), max_value=2**40),
        st.text(
            alphabet=st.characters(min_codepoint=32, max_codepoint=126),
            max_size=10,
        ),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(
            st.text(
                alphabet=st.characters(min_codepoint=97, max_codepoint=122),
                min_size=1,
                max_size=6,
            ),
            children,
            max_size=4,
        ),
    ),
    max_leaves=15,
)


@given(ion_safe)
@settings(max_examples=80)
def test_ion_round_trip_property(data):
    value = from_python(data)
    assert deep_equals(ion_io.loads(ion_io.dumps(value)), value)
