"""End-to-end scenarios combining many features over realistic data."""

import pytest

from repro import Database
from repro.datamodel.equality import deep_equals
from repro.datamodel.values import Bag
from repro.workloads import emp_nested, emp_normalized, event_log, stock_prices_wide

from tests.conftest import bag_of


class TestHrAnalytics:
    @pytest.fixture
    def db(self):
        database = Database()
        database.set("hr.emp", emp_nested(200, fanout=3, seed=21))
        return database

    def test_unnest_filter_group_order(self, db):
        result = db.execute(
            """
            SELECT p.name AS project, COUNT(*) AS members,
                   AVG(e.salary) AS avg_salary
            FROM hr.emp AS e, e.projects AS p
            GROUP BY p.name
            ORDER BY members DESC, project
            """
        )
        assert len(result) > 0
        members = [row["members"] for row in result]
        assert members == sorted(members, reverse=True)

    def test_nested_result_construction(self, db):
        result = bag_of(
            db.execute(
                """
                SELECT e.name AS name,
                       (SELECT VALUE p.name FROM e.projects AS p) AS projects
                FROM hr.emp AS e
                WHERE e.title = 'Manager'
                LIMIT 5
                """
            )
        )
        for row in result:
            assert isinstance(row["projects"], Bag)

    def test_unnest_equals_normalized_join(self, db):
        employees, project_rows = emp_normalized(200, fanout=3, seed=21)
        db.set("flat.emp", employees)
        db.set("flat.proj", project_rows)
        nested = db.execute(
            "SELECT e.id AS id, p.name AS proj FROM hr.emp AS e, e.projects AS p"
        )
        joined = db.execute(
            "SELECT e.id AS id, p.name AS proj "
            "FROM flat.emp AS e JOIN flat.proj AS p ON p.emp_id = e.id"
        )
        assert deep_equals(Bag(list(nested)), Bag(list(joined)))

    def test_top_earner_per_department_with_windows(self, db):
        result = bag_of(
            db.execute(
                """
                SELECT VALUE r
                FROM (SELECT e.deptno AS d, e.name AS name,
                             RANK() OVER (PARTITION BY e.deptno
                                          ORDER BY e.salary DESC) AS rk
                      FROM hr.emp AS e) AS r
                WHERE r.rk = 1
                """
            )
        )
        departments = [row["d"] for row in result]
        # One or more top earners (ties) per department, every dept present.
        assert set(departments) == {e["deptno"] for e in emp_nested(200, fanout=3, seed=21)}


class TestStocksPivoting:
    def test_wide_to_tall_to_wide(self):
        db = Database()
        db.set("wide", stock_prices_wide(10, 4, seed=3))
        tall = db.execute(
            """
            SELECT c."date" AS "date", sym AS symbol, price AS price
            FROM wide AS c, UNPIVOT c AS price AT sym
            WHERE NOT sym = 'date'
            """
        )
        db.set("tall", list(tall))
        rewide = db.execute(
            """
            SELECT sp."date" AS "date",
                   (PIVOT dp.sp.price AT dp.sp.symbol
                    FROM dates_prices AS dp) AS prices
            FROM tall AS sp
            GROUP BY sp."date" GROUP AS dates_prices
            """
        )
        by_date = {row["date"]: row["prices"] for row in bag_of(rewide)}
        original = {row["date"]: row for row in stock_prices_wide(10, 4, seed=3)}
        for date, prices in by_date.items():
            for symbol in prices.keys():
                assert prices[symbol] == original[date][symbol]


class TestDirtyDataPipeline:
    def test_permissive_keeps_healthy_rows(self):
        db = Database()
        db.set("events", event_log(500, dirty_rate=0.2, seed=8))
        result = bag_of(
            db.execute(
                """
                SELECT e.kind AS kind, AVG(e.latency) AS avg_latency,
                       COUNT(*) AS n
                FROM events AS e
                GROUP BY e.kind
                """
            )
        )
        # Dirty rows count toward n but are excluded from the average.
        assert all(row["avg_latency"] is not None for row in result)
        assert sum(row["n"] for row in result) == 500

    def test_strict_mode_stops_on_dirty_row(self):
        from repro.errors import TypeCheckError

        db = Database(typing_mode="strict")
        db.set("events", event_log(100, dirty_rate=0.5, seed=8))
        with pytest.raises(TypeCheckError):
            db.execute("SELECT VALUE e.latency * 2 FROM events AS e")

    def test_heterogeneous_shapes_queryable(self):
        db = Database()
        db.set("events", event_log(300, seed=8))
        result = bag_of(
            db.execute(
                """
                SELECT t AS tag, COUNT(*) AS n
                FROM events AS e, e.tags AS t
                GROUP BY t
                """
            )
        )
        assert result  # events lacking tags were silently excluded
        assert all(isinstance(row["tag"], str) for row in result)
