"""The abstract type lattice the type-flow pass computes over.

An :class:`AType` is a *set* of value categories an expression may
produce at runtime — ``number``, ``string``, ``boolean``, ``null``,
``missing``, ``array``, ``bag``, ``tuple`` — plus optional shape
refinements: an element type for collections and an attribute map for
tuples.  The lattice is the powerset of categories ordered by
inclusion; :func:`join` is the least upper bound.

The contract with the runtime (checked by a hypothesis property in
``tests/analysis``): for every expression, the category of the value
permissive-mode evaluation produces is **contained in** the inferred
``cats`` set.  Analyses therefore only draw conclusions that survive
over-approximation — "this is *always* MISSING" needs
``cats == {missing}``, "these can *never* compare" needs provable
disjointness — so imprecision can cause missed warnings, never false
ones.

NULL and MISSING are first-class categories (the paper's two flavors
of absence, Section IV): a closed-schema navigation that falls off the
tuple contributes ``missing``; a nullable schema field contributes
``null``.  With no schema, everything starts at :data:`TOP` (any
category at all) and the pass still runs — schema-optionality all the
way down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional, Tuple

from repro.schema import types as schema_types

NUMBER = "number"
STRING = "string"
BOOLEAN = "boolean"
NULL = "null"
MISSING_CAT = "missing"
ARRAY = "array"
BAG = "bag"
TUPLE = "tuple"

#: Every category in the lattice.
CATEGORIES: FrozenSet[str] = frozenset(
    {NUMBER, STRING, BOOLEAN, NULL, MISSING_CAT, ARRAY, BAG, TUPLE}
)

#: Categories the runtime's equality operator accepts (operators.py
#: ``_equality_kind``) — absence compares via propagation, not values.
EQUALITY_CATEGORIES: FrozenSet[str] = frozenset(
    {BOOLEAN, NUMBER, STRING, ARRAY, BAG, TUPLE}
)

#: Categories with an order (operators.py ``_ORDERED_KINDS``).
ORDERED_CATEGORIES: FrozenSet[str] = frozenset({NUMBER, STRING, BOOLEAN})

#: Collection categories (iterable by FROM, aggregable by COLL_*).
COLLECTION_CATEGORIES: FrozenSet[str] = frozenset({ARRAY, BAG})

#: The two absence categories.
ABSENT_CATEGORIES: FrozenSet[str] = frozenset({NULL, MISSING_CAT})


@dataclass(frozen=True)
class AType:
    """An abstract type: possible categories plus optional shape.

    ``element`` refines ``array``/``bag`` members (``None`` = unknown);
    ``attrs`` refines ``tuple`` attributes (``None`` = unknown shape).
    ``open`` only matters for tuples: an open tuple may carry
    attributes beyond ``attrs``.  Shape fields are advisory — the
    soundness contract is on ``cats`` alone.
    """

    cats: FrozenSet[str]
    element: Optional["AType"] = None
    attrs: Optional[Tuple[Tuple[str, "AType"], ...]] = None
    open: bool = True

    def may(self, *categories: str) -> bool:
        """True when any of ``categories`` is possible."""
        return any(cat in self.cats for cat in categories)

    def only(self, *categories: str) -> bool:
        """True when every possible category is among ``categories``."""
        return self.cats <= frozenset(categories)

    def is_always_missing(self) -> bool:
        return self.cats == frozenset({MISSING_CAT})

    def is_always_absent(self) -> bool:
        """Always NULL or MISSING — never an actual value."""
        return bool(self.cats) and self.cats <= ABSENT_CATEGORIES

    def attr_map(self) -> Dict[str, "AType"]:
        return dict(self.attrs) if self.attrs is not None else {}

    def describe(self) -> str:
        """Human-readable form, e.g. ``number|null``."""
        if not self.cats:
            return "never"
        order = [NUMBER, STRING, BOOLEAN, ARRAY, BAG, TUPLE, NULL, MISSING_CAT]
        return "|".join(cat for cat in order if cat in self.cats)


#: Anything at all (the lattice top).
TOP = AType(cats=CATEGORIES)

#: No possible value (the lattice bottom; an unreachable expression).
BOTTOM = AType(cats=frozenset())

NUMBER_T = AType(cats=frozenset({NUMBER}))
STRING_T = AType(cats=frozenset({STRING}))
BOOLEAN_T = AType(cats=frozenset({BOOLEAN}))
NULL_T = AType(cats=frozenset({NULL}))
MISSING_T = AType(cats=frozenset({MISSING_CAT}))


def scalar(*categories: str) -> AType:
    """An :class:`AType` over exactly the given categories."""
    return AType(cats=frozenset(categories))


def array_of(element: Optional[AType]) -> AType:
    return AType(cats=frozenset({ARRAY}), element=element)


def bag_of(element: Optional[AType]) -> AType:
    return AType(cats=frozenset({BAG}), element=element)


def tuple_of(
    attrs: Optional[Iterable[Tuple[str, AType]]], open: bool = True
) -> AType:
    return AType(
        cats=frozenset({TUPLE}),
        attrs=tuple(attrs) if attrs is not None else None,
        open=open,
    )


def widen(base: AType, *categories: str) -> AType:
    """``base`` with extra possible categories (shape preserved)."""
    extra = frozenset(categories)
    if extra <= base.cats:
        return base
    return AType(
        cats=base.cats | extra,
        element=base.element,
        attrs=base.attrs,
        open=base.open,
    )


def narrow(base: AType, *categories: str) -> AType:
    """``base`` without the given categories (shape preserved)."""
    removed = frozenset(categories)
    if not (removed & base.cats):
        return base
    return AType(
        cats=base.cats - removed,
        element=base.element,
        attrs=base.attrs,
        open=base.open,
    )


def _join_element(left: AType, right: AType) -> Optional[AType]:
    """Merged element refinement for a join (None = unknown)."""
    left_coll = bool(left.cats & COLLECTION_CATEGORIES)
    right_coll = bool(right.cats & COLLECTION_CATEGORIES)
    if left_coll and right_coll:
        if left.element is None or right.element is None:
            return None
        return join(left.element, right.element)
    if left_coll:
        return left.element
    if right_coll:
        return right.element
    return None


def _join_attrs(
    left: AType, right: AType
) -> Tuple[Optional[Tuple[Tuple[str, AType], ...]], bool]:
    """Merged attribute refinement for a join: ``(attrs, open)``."""
    left_tuple = TUPLE in left.cats
    right_tuple = TUPLE in right.cats
    if left_tuple and right_tuple:
        if left.attrs is None or right.attrs is None:
            return None, True
        left_map = left.attr_map()
        right_map = right.attr_map()
        merged: Dict[str, AType] = {}
        for name in {**left_map, **right_map}:
            in_left = name in left_map
            in_right = name in right_map
            if in_left and in_right:
                merged[name] = join(left_map[name], right_map[name])
            else:
                # The attribute exists on only one alternative:
                # navigating it may fall off the other and yield
                # MISSING.
                present = left_map[name] if in_left else right_map[name]
                merged[name] = widen(present, MISSING_CAT)
        return tuple(sorted(merged.items())), left.open or right.open
    if left_tuple:
        return left.attrs, left.open
    if right_tuple:
        return right.attrs, right.open
    return None, True


def join(left: AType, right: AType) -> AType:
    """Least upper bound: either side's value is possible."""
    if left is right:
        return left
    if not left.cats:
        return right
    if not right.cats:
        return left
    attrs, open_ = _join_attrs(left, right)
    return AType(
        cats=left.cats | right.cats,
        element=_join_element(left, right),
        attrs=attrs,
        open=open_,
    )


def join_all(types: Iterable[AType]) -> AType:
    """Join of a sequence (BOTTOM when empty)."""
    result = BOTTOM
    for item in types:
        result = join(result, item)
    return result


def element_of(collection: AType) -> AType:
    """The abstract element type when iterating ``collection``.

    Used for FROM ranging and COLL_* aggregation: refinement when the
    element type is known, :data:`TOP` otherwise.
    """
    if collection.cats & COLLECTION_CATEGORIES:
        return collection.element if collection.element is not None else TOP
    return TOP


def infer_literal(value: object) -> AType:
    """The abstract type of a Python literal from the parser."""
    if value is None:
        return NULL_T
    if isinstance(value, bool):
        return BOOLEAN_T
    if isinstance(value, (int, float)):
        return NUMBER_T
    if isinstance(value, str):
        return STRING_T
    return TOP


def category_of(value: object) -> str:
    """The lattice category of a runtime value (for the soundness
    property test and schema-free seeding from sample data)."""
    from repro.datamodel.values import MISSING, Bag, Struct

    if value is MISSING:
        return MISSING_CAT
    if value is None:
        return NULL
    if isinstance(value, bool):
        return BOOLEAN
    if isinstance(value, (int, float)):
        return NUMBER
    if isinstance(value, str):
        return STRING
    if isinstance(value, Struct):
        return TUPLE
    if isinstance(value, Bag):
        return BAG
    if isinstance(value, list):
        return ARRAY
    if isinstance(value, dict):
        return TUPLE
    return TUPLE


def soften(abstract: AType) -> AType:
    """Open every tuple shape in an :class:`AType`.

    Used when seeding the lattice from *sampled data* rather than a
    declared schema: a sample proves which attributes exist today, not
    that others never will, so closed-shape conclusions (always-MISSING
    navigation) must not follow from it.
    """
    element = soften(abstract.element) if abstract.element is not None else None
    attrs = (
        tuple((name, soften(attr)) for name, attr in abstract.attrs)
        if abstract.attrs is not None
        else None
    )
    return AType(cats=abstract.cats, element=element, attrs=attrs, open=True)


def from_schema(schema: object) -> AType:
    """Seed an :class:`AType` from a :mod:`repro.schema` type.

    Optional struct fields gain the ``missing`` category (navigation
    may fall off); nullable fields gain ``null``.  ``AnyType`` maps to
    every *value* category — a stored value is never itself MISSING.
    """
    if isinstance(schema, schema_types.AnyType):
        return AType(cats=CATEGORIES - frozenset({MISSING_CAT}))
    if isinstance(schema, schema_types.BooleanType):
        return BOOLEAN_T
    if isinstance(schema, (schema_types.IntegerType, schema_types.FloatType)):
        return NUMBER_T
    if isinstance(schema, schema_types.StringType):
        return STRING_T
    if isinstance(schema, schema_types.NullType):
        return NULL_T
    if isinstance(schema, schema_types.ArrayType):
        return array_of(from_schema(schema.element))
    if isinstance(schema, schema_types.BagType):
        return bag_of(from_schema(schema.element))
    if isinstance(schema, schema_types.StructType):
        attrs = []
        for field in schema.fields:
            field_type = from_schema(field.type)
            if field.nullable:
                field_type = widen(field_type, NULL)
            if field.optional:
                field_type = widen(field_type, MISSING_CAT)
            attrs.append((field.name, field_type))
        return tuple_of(sorted(attrs), open=schema.open)
    if isinstance(schema, schema_types.UnionType):
        return join_all(from_schema(alt) for alt in schema.alternatives)
    return TOP
