"""E19 — empty-proof pruning and constant folding (docs/PLANNER.md).

A/B of ``optimize=True`` vs ``optimize=False`` on the shapes the
abstract-interpretation pass (docs/ANALYZER.md) acts on, at n=100k:

* a **statically-empty branch** — a UNION-style query whose second arm
  carries a contradictory WHERE (``total > 500 AND total < 100``).
  Unoptimized, the arm scans and filters all 100k rows to produce
  nothing; optimized, the planner collapses it to a zero-row
  ``EmptyOp``, so the arm costs O(1).  The headline claim asserted
  below: the pruned arm is **≥20×** faster than the scanned arm.
* a **folded-constant filter** — a WHERE whose threshold is buried in
  constant arithmetic (``250 + 5 * 10``); folding turns the per-row
  evaluation of the constant subtree into a single literal compare.

Both arms must agree exactly on every result (bag comparison) — the
same contract tests/properties/test_absint_equivalence.py pins under
hypothesis and the compat sweep pins corpus-wide.
"""

from __future__ import annotations

import time

import pytest

from repro import Database
from repro.datamodel.equality import deep_equals
from repro.datamodel.values import Bag

N = 100_000
#: Acceptance bar: the pruned contradictory scan at n=100k must beat
#: the unoptimized full scan by at least this factor.
MIN_SPEEDUP = 20.0

#: Both arms of a UNION-style query; the second arm is statically
#: empty.  (SELECT blocks are benchmarked separately so each arm's
#: cost is attributable.)
LIVE_ARM = (
    "SELECT VALUE o.oid FROM orders AS o "
    "WHERE o.total >= 0 AND o.total < 50"
)
EMPTY_ARM = (
    "SELECT VALUE o.oid FROM orders AS o "
    "WHERE o.total > 500 AND o.total < 100"
)
UNION_QUERY = f"({LIVE_ARM}) UNION ALL ({EMPTY_ARM})"
FOLDED_FILTER = (
    "SELECT VALUE o.oid FROM orders AS o WHERE o.total > 250 + 5 * 10"
)


def build_db(**kwargs) -> Database:
    db = Database(**kwargs)
    db.set(
        "orders",
        [{"oid": i, "total": (i * 13) % 500} for i in range(N)],
    )
    return db


@pytest.fixture(scope="module")
def db():
    built = build_db()
    for query in (EMPTY_ARM, UNION_QUERY, FOLDED_FILTER):
        built.execute(query)  # warm both arms' compile caches
        built.execute(query, optimize=False)
    return built


@pytest.fixture(scope="module")
def agreement_verified(db):
    """Both arms agree on every benchmarked query (checked once)."""
    for query in (LIVE_ARM, EMPTY_ARM, UNION_QUERY, FOLDED_FILTER):
        on = db.execute(query)
        off = db.execute(query, optimize=False)
        assert deep_equals(Bag(list(on)), Bag(list(off))), query
    assert list(db.execute(EMPTY_ARM)) == []
    assert "pruned:" in db.explain_plan(EMPTY_ARM)
    return True


@pytest.mark.benchmark(group="E19-empty-arm-n100000")
class TestStaticallyEmptyArm:
    def test_full_scan_reference(self, benchmark, db, agreement_verified):
        benchmark(lambda: db.execute(EMPTY_ARM, optimize=False))

    def test_pruned_to_empty_op(self, benchmark, db, agreement_verified):
        benchmark(lambda: db.execute(EMPTY_ARM))


@pytest.mark.benchmark(group="E19-union-with-empty-arm-n100000")
class TestUnionWithEmptyArm:
    def test_both_arms_scanned(self, benchmark, db, agreement_verified):
        benchmark(lambda: db.execute(UNION_QUERY, optimize=False))

    def test_empty_arm_pruned(self, benchmark, db, agreement_verified):
        benchmark(lambda: db.execute(UNION_QUERY))


@pytest.mark.benchmark(group="E19-folded-filter-n100000")
class TestFoldedConstantFilter:
    def test_per_row_constant_arithmetic(
        self, benchmark, db, agreement_verified
    ):
        benchmark(lambda: db.execute(FOLDED_FILTER, optimize=False))

    def test_folded_literal_compare(self, benchmark, db, agreement_verified):
        benchmark(lambda: db.execute(FOLDED_FILTER))


def test_prune_speedup_claim(db, agreement_verified):
    """The headline claim: ≥20× for the contradictory arm at n=100k."""
    db.execute(EMPTY_ARM)  # warm

    started = time.perf_counter()
    reference = db.execute(EMPTY_ARM, optimize=False)
    scanned_s = time.perf_counter() - started

    started = time.perf_counter()
    pruned = db.execute(EMPTY_ARM)
    pruned_s = time.perf_counter() - started

    assert deep_equals(Bag(list(pruned)), Bag(list(reference)))
    speedup = scanned_s / pruned_s
    print(
        f"\nE19 n=100k contradictory WHERE: scanned {scanned_s * 1e3:.0f}ms, "
        f"pruned {pruned_s * 1e3:.2f}ms → {speedup:.0f}× speedup"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"empty-proof pruning only {speedup:.1f}× faster than the full "
        f"scan (bar: {MIN_SPEEDUP}×)"
    )
