"""Value types of the SQL++ data model.

The paper (Section II) relaxes the SQL data model: a value can be absent,
scalar, tuple, collection, or any composition thereof.  Two kinds of absent
values exist: ``NULL`` (a present but unknown value — Python ``None``) and
``MISSING`` (the result of navigation that binds to nothing, or of a
function applied to wrongly-typed input in permissive mode).

Collections are arrays (ordered — plain Python lists) and bags (unordered
multisets — :class:`Bag`).  Tuples (:class:`Struct`) are unordered and may
carry duplicate attribute names for compatibility with non-strict formats
such as JSON or Ion, although duplicate names are discouraged (navigation
returns the first binding).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List, Mapping, Tuple, Union


class Missing:
    """The type of the special value :data:`MISSING`.

    ``MISSING`` is a singleton: ``Missing()`` always returns the same
    object, so identity checks (``value is MISSING``) are reliable.  It is
    falsy, propagates through expressions (see :mod:`repro.functions`), and
    may not appear as an attribute value in constructed tuples (the
    attribute is omitted instead — paper, Section IV-B).
    """

    _instance: "Missing" = None  # type: ignore[assignment]

    def __new__(cls) -> "Missing":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "MISSING"

    def __bool__(self) -> bool:
        return False

    def __reduce__(self):
        # Keep the singleton property across pickling.
        return (Missing, ())


MISSING = Missing()

#: The Python types accepted as SQL++ scalars.
SCALAR_TYPES = (bool, int, float, str)

Value = Union[None, Missing, bool, int, float, str, list, "Bag", "Struct"]


class Struct:
    """A SQL++ tuple: an unordered multiset of attribute name/value pairs.

    Unlike a Python ``dict``, a :class:`Struct` may contain duplicate
    attribute names (paper, Section II).  Insertion order is preserved for
    deterministic iteration and printing, but **equality ignores order**:
    two structs are equal when their name/value pair multisets are equal.

    Navigation with :meth:`get` (and the evaluator's dot/bracket paths)
    returns the *first* value bound to a name, or :data:`MISSING` when the
    name is absent — the paper notes duplicate names make navigation
    non-reproducible, which this first-match rule makes deterministic for
    a given insertion order.

    Attributes whose value is ``MISSING`` are rejected at construction
    time: MISSING may not appear as an attribute's value (Section IV-B).
    Construct structs through the evaluator (which silently omits MISSING
    attributes) or filter before constructing.
    """

    __slots__ = ("_pairs",)

    def __init__(
        self,
        pairs: Union[Mapping[str, Any], Iterable[Tuple[str, Any]], None] = None,
    ):
        if pairs is None:
            items: List[Tuple[str, Any]] = []
        elif isinstance(pairs, Mapping):
            items = list(pairs.items())
        else:
            items = [(name, value) for name, value in pairs]
        for name, value in items:
            if not isinstance(name, str):
                raise TypeError(
                    f"struct attribute names must be strings, got {name!r}"
                )
            if value is MISSING:
                raise ValueError(
                    f"MISSING may not appear as the value of attribute {name!r}; "
                    "omit the attribute instead"
                )
        self._pairs = items

    # -- mapping-style access ------------------------------------------------

    def get(self, name: str, default: Any = MISSING) -> Any:
        """Return the first value bound to ``name``, or ``default``."""
        for key, value in self._pairs:
            if key == name:
                return value
        return default

    def get_all(self, name: str) -> List[Any]:
        """Return every value bound to ``name`` (duplicates included)."""
        return [value for key, value in self._pairs if key == name]

    def __getitem__(self, name: str) -> Any:
        value = self.get(name)
        if value is MISSING:
            raise KeyError(name)
        return value

    def __contains__(self, name: object) -> bool:
        return any(key == name for key, __ in self._pairs)

    def keys(self) -> List[str]:
        """Attribute names, in insertion order (duplicates included)."""
        return [key for key, __ in self._pairs]

    def values(self) -> List[Any]:
        return [value for __, value in self._pairs]

    def items(self) -> List[Tuple[str, Any]]:
        return list(self._pairs)

    def __iter__(self) -> Iterator[str]:
        return iter(self.keys())

    def __len__(self) -> int:
        return len(self._pairs)

    # -- construction helpers ------------------------------------------------

    def with_attr(self, name: str, value: Any) -> "Struct":
        """Return a copy with ``name``/``value`` appended.

        Appending ``MISSING`` returns the struct unchanged, implementing
        the omit-on-MISSING rule for result construction.
        """
        if value is MISSING:
            return self
        return Struct(self._pairs + [(name, value)])

    def merged(self, other: "Struct") -> "Struct":
        """Return the concatenation of this struct's pairs and ``other``'s."""
        return Struct(self._pairs + other._pairs)

    def to_dict(self) -> dict:
        """Convert to a ``dict`` (later duplicates win, matching JSON)."""
        return dict(self._pairs)

    # -- equality ------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Struct):
            return NotImplemented
        from repro.datamodel.equality import deep_equals

        return deep_equals(self, other)

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    __hash__ = None  # type: ignore[assignment]  # mutable-style container

    def __repr__(self) -> str:
        inner = ", ".join(f"{name!r}: {value!r}" for name, value in self._pairs)
        return "{" + inner + "}"


class Bag:
    """A SQL++ bag: an unordered multiset of arbitrary values.

    Printed as ``{{ ... }}`` in the paper's literal notation.  Iteration
    follows insertion order (useful for deterministic tests and printing)
    but equality is multiset equality under SQL++ deep equality — two bags
    with the same elements in different orders are equal.
    """

    __slots__ = ("_items",)

    def __init__(self, items: Iterable[Any] = ()):
        self._items = list(items)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def add(self, item: Any) -> None:
        """Append an element to the bag (multisets allow duplicates)."""
        self._items.append(item)

    def to_list(self) -> List[Any]:
        """The bag's elements as a list, in insertion order."""
        return list(self._items)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bag):
            return NotImplemented
        from repro.datamodel.equality import deep_equals

        return deep_equals(self, other)

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        inner = ", ".join(repr(item) for item in self._items)
        return "<<" + inner + ">>"


class LazyBag(Bag):
    """A bag whose elements come from a re-iterable factory.

    ``factory`` returns a *fresh* iterator of model values on every
    call; nothing is materialized up front, and each traversal streams
    elements one at a time.  This is what lets the pipelined evaluator
    run ``ORDER BY ... LIMIT k`` or early-terminating consumers in O(k)
    memory over arbitrarily large generated collections (the eager
    paths still work — they simply materialize while iterating).

    Like any bag the element order carries no meaning, so the factory
    is free to produce elements in any (even varying) order; counting
    via ``len`` traverses the factory once without retaining elements.
    """

    __slots__ = ("_factory",)

    def __init__(self, factory):
        self._factory = factory

    def __iter__(self) -> Iterator[Any]:
        return iter(self._factory())

    def __len__(self) -> int:
        return sum(1 for __ in self._factory())

    def add(self, item: Any) -> None:
        raise TypeError("a lazy bag is read-only; materialize it first")

    def to_list(self) -> List[Any]:
        return list(self._factory())

    def __repr__(self) -> str:
        return f"<<lazy {self._factory!r}>>"


# -- classification helpers ----------------------------------------------


def is_scalar(value: Any) -> bool:
    """True for the SQL scalar types (bool, int, float, str)."""
    return isinstance(value, SCALAR_TYPES)


def is_collection(value: Any) -> bool:
    """True for arrays (lists) and bags."""
    return isinstance(value, (list, Bag))


def is_absent(value: Any) -> bool:
    """True for ``NULL`` (None) and ``MISSING``."""
    return value is None or value is MISSING


def type_name(value: Any) -> str:
    """The SQL++ type name of a value, for error messages and ``typeof``."""
    if value is MISSING:
        return "missing"
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "boolean"
    if isinstance(value, int):
        return "integer"
    if isinstance(value, float):
        return "float"
    if isinstance(value, str):
        return "string"
    if isinstance(value, list):
        return "array"
    if isinstance(value, Bag):
        return "bag"
    if isinstance(value, Struct):
        return "tuple"
    raise TypeError(f"not a SQL++ value: {value!r} ({type(value).__name__})")
