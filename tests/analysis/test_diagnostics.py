"""Diagnostic plumbing: suppression comments, caller suppression sets,
dedupe/sort, and the text/JSON renderers."""

import json

from repro.analysis import analyze, render_json, render_text
from repro.analysis.diagnostics import (
    Diagnostic,
    dedupe,
    filter_suppressed,
    has_errors,
    sort_diagnostics,
    suppressions_by_line,
)
from repro.analysis.rules import make


def D(code, severity="warning", line=None, column=None, message="m"):
    return Diagnostic(
        code=code,
        severity=severity,
        message=message,
        line=line,
        column=column,
    )


class TestInlineSuppression:
    def test_bare_ignore_suppresses_all_codes_on_line(self):
        by_line = suppressions_by_line("SELECT VALUE 1 -- sqlpp-ignore\n")
        assert by_line == {1: None}

    def test_code_list(self):
        by_line = suppressions_by_line(
            "x -- sqlpp-ignore: SQLPP102, SQLPP105\n"
        )
        assert by_line == {1: frozenset({"SQLPP102", "SQLPP105"})}

    def test_analyze_respects_inline_ignore(self):
        noisy = "SELECT VALUE 1 = 'a'"
        assert any(
            d.code == "SQLPP102" for d in analyze(noisy)
        )
        quiet = "SELECT VALUE 1 = 'a' -- sqlpp-ignore: SQLPP102"
        assert not any(d.code == "SQLPP102" for d in analyze(quiet))

    def test_ignore_only_applies_to_its_line(self):
        source = (
            "SELECT VALUE 1 = 'a'; -- sqlpp-ignore: SQLPP102\n"
            "SELECT VALUE 2 = 'b';"
        )
        remaining = [d for d in analyze(source) if d.code == "SQLPP102"]
        assert len(remaining) == 1
        assert remaining[0].line == 2


class TestCallerSuppression:
    def test_suppress_set_drops_code_everywhere(self):
        found = [D("SQLPP102", line=1), D("SQLPP105", line=2)]
        kept = filter_suppressed(found, "", ("SQLPP102",))
        assert [d.code for d in kept] == ["SQLPP105"]

    def test_unlocated_findings_survive_inline_ignores(self):
        found = [D("SQLPP000", severity="error")]
        assert filter_suppressed(found, "-- sqlpp-ignore\n", ()) == found


class TestDedupeAndSort:
    def test_dedupe_key_is_code_message_position(self):
        twice = [D("SQLPP102", line=1, column=2)] * 2
        assert len(dedupe(twice)) == 1

    def test_sort_severity_then_position(self):
        out = sort_diagnostics(
            [
                D("SQLPP003", severity="warning", line=1, column=1),
                D("SQLPP001", severity="error", line=9, column=9),
                D("SQLPP002", severity="warning", line=1, column=5),
            ]
        )
        assert [d.code for d in out] == ["SQLPP001", "SQLPP003", "SQLPP002"]

    def test_has_errors(self):
        assert has_errors([D("SQLPP001", severity="error")])
        assert not has_errors([D("SQLPP002")])


class TestMake:
    def test_make_applies_registry_severity(self):
        assert make("SQLPP001", "x").severity == "error"
        assert make("SQLPP003", "x").severity == "warning"


class TestRenderers:
    SOURCE = "SELECT VALUE FLOR(1.5)"

    def findings(self):
        return analyze(self.SOURCE)

    def test_text_has_location_code_and_caret(self):
        text = render_text(self.findings(), self.SOURCE, "q.sqlpp")
        assert "q.sqlpp:1:" in text
        assert "error[SQLPP004]" in text
        assert "^" in text
        assert "hint:" in text
        assert "1 error(s)" in text

    def test_text_clean_summary(self):
        assert render_text([], "SELECT VALUE 1", "q.sqlpp").endswith(
            "clean"
        )

    def test_json_document_shape(self):
        payload = json.loads(render_json(self.findings(), "q.sqlpp"))
        assert payload["file"] == "q.sqlpp"
        assert payload["errors"] == 1
        entry = payload["diagnostics"][0]
        assert entry["code"] == "SQLPP004"
        assert entry["severity"] == "error"
        assert entry["line"] == 1
