"""Histogram bucket math and Prometheus text exposition."""

import re
import threading

import pytest

from repro import Database
from repro.observability import DEFAULT_BUCKETS, Histogram
from repro.observability.exposition import (
    escape_help,
    escape_label_value,
    format_bound,
    format_labels,
)


class TestHistogram:
    def test_observations_land_in_the_right_buckets(self):
        hist = Histogram(buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            hist.observe(value)
        cumulative = dict(hist.cumulative())
        assert cumulative[format_bound(0.1)] == 1
        assert cumulative[format_bound(1.0)] == 3
        assert cumulative[format_bound(10.0)] == 4
        assert cumulative["+Inf"] == 5
        assert hist.count == 5
        assert hist.sum == pytest.approx(56.05)

    def test_cumulative_is_monotone(self):
        hist = Histogram()
        for exponent in range(-6, 2):
            hist.observe(10.0**exponent)
        counts = [count for __, count in hist.cumulative()]
        assert counts == sorted(counts)
        assert counts[-1] == hist.count

    def test_boundary_value_counts_as_le(self):
        hist = Histogram(buckets=(1.0,))
        hist.observe(1.0)
        assert dict(hist.cumulative())[format_bound(1.0)] == 1

    def test_quantile_estimate(self):
        hist = Histogram(buckets=(0.001, 0.01, 0.1, 1.0))
        for __ in range(99):
            hist.observe(0.005)
        hist.observe(0.5)
        assert hist.quantile(0.5) <= 0.01
        assert hist.quantile(0.999) >= 0.1

    def test_default_buckets_are_log_spaced(self):
        ratios = {
            round(b / a, 6)
            for a, b in zip(DEFAULT_BUCKETS, DEFAULT_BUCKETS[1:])
        }
        assert ratios == {2.5}


class TestFormatting:
    def test_format_bound_is_fixed_point(self):
        assert format_bound(0.00025) == "0.00025"
        assert "e" not in format_bound(DEFAULT_BUCKETS[0]).lower()

    def test_label_escaping(self):
        assert escape_label_value('say "hi"\n') == 'say \\"hi\\"\\n'
        assert escape_label_value("back\\slash") == "back\\\\slash"

    def test_labels_render_sorted(self):
        assert format_labels({"b": "2", "a": "1"}) == '{a="1",b="2"}'


#: One Prometheus text-format line: ``# HELP``, ``# TYPE``, or a
#: sample ``name{labels} value``.
_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [0-9.e+-]+$"
)


def _assert_prometheus_text(text: str) -> None:
    assert text.endswith("\n")
    for line in text.splitlines():
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            continue
        assert _SAMPLE.match(line), f"unparseable sample line: {line!r}"


class TestExposeText:
    @pytest.fixture
    def db(self):
        database = Database()
        database.set("r", [{"v": i} for i in range(4)])
        return database

    def test_text_parses_as_prometheus(self, db):
        db.execute("SELECT VALUE a.v FROM r AS a")
        db.execute("SELECT VALUE a.v FROM r AS a")
        _assert_prometheus_text(db.metrics.expose_text())

    def test_counters_and_cache_labels(self, db):
        db.execute("SELECT VALUE 1")
        db.execute("SELECT VALUE 1")
        text = db.metrics.expose_text()
        assert "repro_queries_total 2" in text
        assert 'repro_compile_cache_requests_total{result="hit"} 1' in text
        assert 'repro_compile_cache_requests_total{result="miss"} 1' in text

    def test_histogram_family_per_phase(self, db):
        db.execute("SELECT VALUE 1")
        text = db.metrics.expose_text()
        assert "# TYPE repro_query_seconds histogram" in text
        for phase in ("parse", "execute", "total"):
            assert f'repro_query_seconds_bucket{{le="+Inf",phase="{phase}"}} 1' in text
            assert f'repro_query_seconds_count{{phase="{phase}"}} 1' in text
        assert re.search(r'repro_query_seconds_sum\{phase="total"\} [0-9.]+', text)

    def test_bucket_counts_are_cumulative(self, db):
        db.execute("SELECT VALUE 1")
        text = db.metrics.expose_text()
        counts = [
            int(match.group(1))
            for match in re.finditer(
                r'repro_query_seconds_bucket\{le="[^"]*",phase="total"\} (\d+)',
                text,
            )
        ]
        assert counts == sorted(counts)
        assert counts[-1] == 1

    def test_plan_phase_only_observed_when_planner_ran(self):
        db = Database(optimize=False)
        db.set("r", [1])
        db.execute("SELECT VALUE a FROM r AS a")
        text = db.metrics.expose_text()
        assert 'repro_query_seconds_count{phase="plan"} 0' in text

    def test_expose_text_thread_safe_under_load(self, db):
        errors = []

        def hammer():
            try:
                for __ in range(20):
                    db.execute("SELECT VALUE a.v FROM r AS a")
                    db.metrics.expose_text()
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for __ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert db.metrics.counters["queries_total"] == 80


class TestEscaping:
    """Text-format 0.0.4 escaping pins: label values escape backslash
    (first — it is the escape character), double quote and newline;
    HELP lines escape backslash and newline only.  Query text lands in
    labels via the slow-log and the query store's q-error gauge, and
    real queries contain all three characters."""

    def test_label_value_escapes(self):
        assert escape_label_value('say "hi"') == r"say \"hi\""
        assert escape_label_value("line1\nline2") == r"line1\nline2"
        assert escape_label_value("back\\slash") == r"back\\slash"

    def test_label_value_backslash_escaped_first(self):
        # A literal backslash-n in the input must NOT collapse into the
        # newline escape: it becomes \\n, distinguishable from \n.
        assert escape_label_value("\\n") == r"\\n"
        assert escape_label_value("\n") == r"\n"
        assert escape_label_value('\\"') == r"\\\""

    def test_help_escapes(self):
        assert escape_help("a\nb") == r"a\nb"
        assert escape_help("a\\b") == r"a\\b"
        # Quotes are legal in HELP text, unlike in label values.
        assert escape_help('say "hi"') == 'say "hi"'

    def test_format_labels_round_trip_nasty_values(self):
        text = format_labels({"query": 'SELECT "a\nb" FROM \\t'})
        assert "\n" not in text
        assert text == r'{query="SELECT \"a\nb\" FROM \\t"}'

    def test_exposed_store_gauge_with_nasty_query_text(self):
        # End to end: a query whose text contains quotes, newlines and
        # backslashes flows through the query store into a labelled
        # gauge; every exposed line must stay a single line with
        # balanced quoting.
        from repro.observability import MetricsRegistry, QueryStore

        store = QueryStore()
        nasty = 'SELECT r.v AS v FROM r AS r\nWHERE r.name = "a\\b"'
        store.observe("fp1", nasty, "aaa", "ok", 0.01, 1, qerror=7.5)
        registry = MetricsRegistry()
        store.export_gauges(registry)
        text = registry.expose_text()
        assert "repro_query_store_qerror" in text
        sample = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{.*\})? [^ ]+$"
        )
        for line in text.splitlines():
            if not line or line.startswith("#"):
                continue
            assert sample.match(line), line
        assert r"\"a\\b\"" in text
        assert r"\n" in text
