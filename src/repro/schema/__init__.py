"""Optional schemas (paper tenet 3: *optional schema and query stability*).

SQL++ never requires a schema, but accepts one: data can be validated
against it, bare column names can be statically disambiguated through it
(Section III), and queries can be statically type-checked when it is
present (Section I, relaxation 2).  Heterogeneity remains expressible
under schema through union types, mirroring Hive's ``UNIONTYPE``
(Listing 5).

The *query stability* tenet — "the result of a working query should not
change if a schema is imposed on existing data" — holds by construction:
schemas influence validation and static checks only, never evaluation
(tested property-style in ``tests/schema``).
"""

from repro.schema.types import (
    AnyType,
    ArrayType,
    BagType,
    BooleanType,
    FloatType,
    IntegerType,
    NullType,
    SchemaType,
    StringType,
    StructField,
    StructType,
    UnionType,
    element_attribute_names,
)
from repro.schema.validate import validate, conforms
from repro.schema.ddl import parse_schema
from repro.schema.infer import infer_schema
from repro.schema.typecheck import check_query

__all__ = [
    "AnyType",
    "ArrayType",
    "BagType",
    "BooleanType",
    "FloatType",
    "IntegerType",
    "NullType",
    "SchemaType",
    "StringType",
    "StructField",
    "StructType",
    "UnionType",
    "element_attribute_names",
    "validate",
    "conforms",
    "parse_schema",
    "infer_schema",
    "check_query",
]
