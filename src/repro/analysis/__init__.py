"""Static semantic analysis for SQL++ (the ``lint`` subsystem).

The analyzer runs on the *rewritten Core AST* — after the SQL-sugar
rewriter, before planning — so it checks exactly the program the
evaluator will run, with the paper's two language dials (SQL
compatibility and typing mode) already applied.  It is schema-optional,
like everything else in the reproduction: with no schema it reasons
over a coarse abstract-type lattice seeded from nothing; with catalog
schemas it seeds the lattice from them and gets sharper answers.

Layering (each layer only depends on the ones above it):

* :mod:`repro.analysis.diagnostics` — :class:`Diagnostic`, severities,
  suppression parsing (``-- sqlpp-ignore: SQLPP001`` comments).
* :mod:`repro.analysis.rules` — the stable rule registry
  (``SQLPP000``..``SQLPP105``), one place per code.
* :mod:`repro.analysis.lattice` — the abstract type lattice
  (:class:`AType`): scalar categories x collection/tuple shape x the
  NULL/MISSING absence dimension, with ``join`` and schema seeding.
* :mod:`repro.analysis.scopes` — the scope resolver: walks the binding
  structure of FROM/LET/GROUP AS and reports unbound, shadowed and
  unused names.
* :mod:`repro.analysis.typeflow` — the abstract interpreter: infers an
  :class:`AType` for every expression and reports statically-decidable
  type trouble (always-MISSING navigation, disjoint comparisons, ...).
* :mod:`repro.analysis.analyzer` — orchestration: parse, rewrite, run
  the passes, apply suppressions.
* :mod:`repro.analysis.render` — human (caret-context) and JSON
  renderers.

Entry points: :func:`analyze` here, ``Database.check`` on the library
facade, and ``python -m repro lint`` on the command line.
"""

from repro.analysis.analyzer import AnalyzerOptions, analyze, analyze_query
from repro.analysis.diagnostics import (
    ERROR,
    INFO,
    WARNING,
    Diagnostic,
    filter_suppressed,
    sort_diagnostics,
)
from repro.analysis.lattice import AType, from_schema, infer_literal
from repro.analysis.rules import RULES, Rule, rule_for
from repro.analysis.render import render_json, render_text
from repro.analysis.typeflow import infer_expression

__all__ = [
    "AType",
    "AnalyzerOptions",
    "Diagnostic",
    "ERROR",
    "INFO",
    "RULES",
    "Rule",
    "WARNING",
    "analyze",
    "analyze_query",
    "filter_suppressed",
    "from_schema",
    "infer_expression",
    "infer_literal",
    "render_json",
    "render_text",
    "rule_for",
    "sort_diagnostics",
]
