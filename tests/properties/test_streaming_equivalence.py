"""Property test: the streaming clause pipeline preserves Core semantics.

For randomly generated workloads — heterogeneous rows with optional
(sometimes-MISSING) attributes, joins, filters, GROUP BY, ORDER BY with
random directions and NULLS placement, LIMIT and OFFSET — evaluation
with ``optimize=True`` (the pipelined generator engine: streamed scans,
top-K ORDER BY ... LIMIT, early termination, streaming hash GROUP BY)
must produce exactly the same result as ``optimize=False`` (the eager
reference semantics).

Results are compared *ordered* (``deep_equals`` on lists).  This is the
strongest possible check and it is sound because every streaming
operator is order-preserving relative to the reference pipeline and the
top-K heap reproduces the reference's stable sort via a sequence-number
tiebreaker (docs/PLANNER.md).
"""

from hypothesis import given, settings, strategies as st

from repro import Database
from repro.datamodel.equality import deep_equals


def row_strategy():
    # Optional attributes: a dropped key means MISSING, exercising the
    # ORDER BY NULLS placement and absent-key grouping paths.
    return st.fixed_dictionaries(
        {},
        optional={
            "k": st.one_of(
                st.none(), st.integers(0, 4), st.sampled_from(["a", "b"])
            ),
            "j": st.integers(0, 2),
            "u": st.integers(-10, 10),
        },
    )


def with_ids(rows):
    # A unique id per row gives ORDER BY a total tiebreaker, so ordered
    # comparison is deterministic even on duplicate sort keys.
    return [dict(row, id=i) for i, row in enumerate(rows)]


tables = st.tuples(
    st.lists(row_strategy(), max_size=10),
    st.lists(row_strategy(), max_size=8),
)

order_modifiers = st.tuples(
    st.sampled_from(["", " DESC"]),
    st.sampled_from(["", " NULLS FIRST", " NULLS LAST"]),
)

limit_offset = st.tuples(
    st.one_of(st.none(), st.integers(0, 12)),
    st.one_of(st.none(), st.integers(0, 6)),
)


def tail_clause(limit, offset):
    clause = ""
    if limit is not None:
        clause += f" LIMIT {limit}"
    if offset is not None:
        clause += f" OFFSET {offset}"
    return clause


def run_both(db: Database, query: str, typing_mode: str = "permissive") -> None:
    streamed = db.execute(query, optimize=True, typing_mode=typing_mode)
    assert db.metrics.last.streamed is True
    reference = db.execute(query, optimize=False, typing_mode=typing_mode)
    assert db.metrics.last.streamed is False
    assert deep_equals(list(streamed), list(reference)), (
        f"streaming parity violation for {query!r}"
    )


@given(
    st.lists(row_strategy(), max_size=12),
    order_modifiers,
    limit_offset,
    st.sampled_from(["permissive", "strict"]),
)
@settings(max_examples=80, deadline=None)
def test_order_limit_offset_parity(rows, modifiers, tail, typing_mode):
    desc, nulls = modifiers
    db = Database()
    db.set("t", with_ids(rows))
    query = (
        "SELECT t.id AS id, t.k AS k FROM t AS t "
        f"ORDER BY t.k{desc}{nulls}, t.id{tail_clause(*tail)}"
    )
    run_both(db, query, typing_mode)


@given(st.lists(row_strategy(), max_size=12), limit_offset)
@settings(max_examples=60, deadline=None)
def test_unordered_limit_offset_parity(rows, tail):
    db = Database()
    db.set("t", with_ids(rows))
    for select in ("t.id AS id", "VALUE t.u", "DISTINCT t.j AS j"):
        run_both(
            db,
            f"SELECT {select} FROM t AS t{tail_clause(*tail)}",
        )


@given(tables, st.sampled_from(["JOIN", "LEFT JOIN"]), order_modifiers)
@settings(max_examples=60, deadline=None)
def test_join_where_order_limit_parity(data, kind, modifiers):
    left, right = data
    desc, nulls = modifiers
    db = Database()
    db.set("lt", with_ids(left))
    db.set("rt", with_ids(right))
    run_both(
        db,
        "SELECT l.id AS lid, r.id AS rid, r.u AS u FROM lt AS l "
        f"{kind} rt AS r ON l.k = r.k WHERE l.j >= 1 "
        f"ORDER BY r.u{desc}{nulls}, l.id, r.id LIMIT 4",
    )


@given(tables, limit_offset)
@settings(max_examples=60, deadline=None)
def test_group_by_having_order_parity(data, tail):
    left, __ = data
    db = Database()
    db.set("t", with_ids(left))
    run_both(
        db,
        "SELECT j, COUNT(*) AS n, SUM(t.u) AS total "
        "FROM t AS t GROUP BY t.j AS j "
        "HAVING COUNT(*) >= 1 "
        f"ORDER BY n DESC, j{tail_clause(*tail)}",
    )
    run_both(
        db,
        "SELECT k, (SELECT VALUE e.t.u FROM g AS e) AS members "
        "FROM t AS t GROUP BY t.k AS k GROUP AS g",
    )


@given(tables)
@settings(max_examples=50, deadline=None)
def test_correlated_exists_and_in_parity(data):
    left, right = data
    db = Database()
    db.set("lt", with_ids(left))
    db.set("rt", with_ids(right))
    run_both(
        db,
        "SELECT l.id AS id FROM lt AS l "
        "WHERE EXISTS (SELECT VALUE r.id FROM rt AS r WHERE r.k = l.k)",
    )
    run_both(
        db,
        "SELECT l.id AS id FROM lt AS l "
        "WHERE l.j IN (SELECT VALUE r.j FROM rt AS r)",
    )
