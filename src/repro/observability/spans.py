"""Structured spans: one query execution as a tree of timed regions.

A :class:`TraceContext` collects :class:`Span` records for one traced
run — the query-lifecycle phases (parse → rewrite → plan → execute),
every physical plan operator, every reference-path FROM item and every
clause-pipeline stage.  Spans carry trace/span identifiers and parent
links, so the flat list reconstructs the exact call tree.

Recording is explicitly two-mode, matching how the engine already
times things:

* :meth:`TraceContext.begin` / :meth:`TraceContext.end` bracket a
  region that *contains* other spans (the query root, the execute
  phase, a join operator whose children produce inside it): ``begin``
  pushes the span on an open-span stack so anything recorded before
  ``end`` becomes its child.
* :meth:`TraceContext.event` records a leaf span post-hoc from an
  already-measured ``(start, duration)`` pair — the style the clause
  pipeline and the compile phases use — parented to whatever span is
  open at record time.  The streaming clause pipeline records its
  stage spans this way when the stream closes, with ``rows_in`` /
  ``rows_out`` reflecting only the rows that actually flowed (early
  termination stops producers before they finish).

Exports:

* :meth:`TraceContext.to_chrome_trace` — Chrome trace-event JSON
  (complete ``"ph": "X"`` events); load the file in ``chrome://tracing``
  or Perfetto.
* :meth:`TraceContext.to_collapsed` — collapsed-stack text
  (``root;child;leaf <self-time-µs>`` per line), the input format of
  flamegraph.pl and speedscope.
* :meth:`TraceContext.format_tree` — a human-readable indented tree for
  the REPL's ``.trace``.

Like the rest of the observability layer, spans are strictly opt-in:
nothing in the engine constructs a ``TraceContext`` unless asked
(``db.trace``, ``--trace-out``), and the hot paths see only the
existing single ``tracer is None`` identity check.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, List, Optional

from repro.observability.tracer import format_seconds

#: Process-wide monotonic trace-id source (no randomness: deterministic
#: ids keep traces diffable and tests stable).
_TRACE_IDS = itertools.count(1)


@dataclass
class Span:
    """One timed region of a traced execution."""

    trace_id: str
    span_id: int
    #: ``None`` for a root span, else the parent's ``span_id``.
    parent_id: Optional[int]
    name: str
    #: Coarse classification: "query", "phase", "operator", "item",
    #: "stage", "case" — becomes the Chrome event category.
    category: str
    #: Start offset in seconds, relative to the context's epoch.
    start_s: float
    duration_s: float = 0.0
    #: Free-form annotations (operator describe(), row counts, ...).
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "category": self.category,
            "start_s": round(self.start_s, 9),
            "duration_s": round(self.duration_s, 9),
            "attrs": dict(self.attrs),
        }


class TraceContext:
    """Span collection for one traced run (one query, or one session).

    All timings come from :func:`time.perf_counter` relative to the
    context's construction, so span offsets are comparable within one
    context regardless of wall-clock adjustments.
    """

    def __init__(self, name: str = "trace", max_spans: int = 50_000):
        self.trace_id = f"t{next(_TRACE_IDS):06d}"
        self.name = name
        self.spans: List[Span] = []
        #: Bound on retained spans: a traced 10k×10k nested loop would
        #: otherwise record millions.  Spans beyond the cap are counted
        #: in :attr:`dropped` instead of kept (parenting of retained
        #: spans stays correct — open spans still stack).
        self.max_spans = max_spans
        self.dropped = 0
        self._epoch = perf_counter()
        self._next_span = itertools.count(1)
        #: Stack of open (begun, not yet ended) spans; the top is the
        #: parent of anything recorded now.
        self._stack: List[Span] = []

    # -- recording -----------------------------------------------------

    def _now(self) -> float:
        return perf_counter() - self._epoch

    def begin(
        self,
        name: str,
        category: str = "",
        attrs: Optional[Dict[str, Any]] = None,
    ) -> Span:
        """Open a span; everything recorded before :meth:`end` nests
        under it."""
        span = Span(
            trace_id=self.trace_id,
            span_id=next(self._next_span),
            parent_id=self._stack[-1].span_id if self._stack else None,
            name=name,
            category=category,
            start_s=self._now(),
            attrs=dict(attrs or {}),
        )
        if len(self.spans) < self.max_spans:
            self.spans.append(span)
        else:
            self.dropped += 1
        self._stack.append(span)
        return span

    def end(self, span: Span, attrs: Optional[Dict[str, Any]] = None) -> Span:
        """Close a span opened with :meth:`begin`.

        Closing out of order is tolerated (everything opened after
        ``span`` is closed with it) so error paths cannot corrupt the
        stack.
        """
        now = self._now()
        while self._stack:
            top = self._stack.pop()
            top.duration_s = now - top.start_s
            if top is span:
                break
        if attrs:
            span.attrs.update(attrs)
        return span

    def event(
        self,
        name: str,
        category: str,
        start_s: float,
        duration_s: float,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> Span:
        """Record a leaf span post-hoc from measured perf_counter times.

        ``start_s`` is an *absolute* :func:`perf_counter` reading (the
        caller's ``started = perf_counter()``), translated onto this
        context's epoch here.
        """
        span = Span(
            trace_id=self.trace_id,
            span_id=next(self._next_span),
            parent_id=self._stack[-1].span_id if self._stack else None,
            name=name,
            category=category,
            start_s=start_s - self._epoch,
            duration_s=duration_s,
            attrs=dict(attrs or {}),
        )
        if len(self.spans) < self.max_spans:
            self.spans.append(span)
        else:
            self.dropped += 1
        return span

    # -- structure -----------------------------------------------------

    def roots(self) -> List[Span]:
        return [span for span in self.spans if span.parent_id is None]

    def children_of(self, span: Span) -> List[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def _children_index(self) -> Dict[Optional[int], List[Span]]:
        index: Dict[Optional[int], List[Span]] = {}
        for span in self.spans:
            index.setdefault(span.parent_id, []).append(span)
        return index

    # -- exports -------------------------------------------------------

    def to_chrome_trace(self) -> Dict[str, Any]:
        """The trace as a Chrome trace-event JSON object.

        Complete (``"ph": "X"``) events with microsecond ``ts``/``dur``;
        span and parent identifiers ride in ``args`` so the tree is
        recoverable from the export alone.  Serialize with
        :func:`json.dumps` (or :meth:`write_chrome_trace`) and load the
        file in Perfetto / ``chrome://tracing``.
        """
        events = []
        for span in self.spans:
            events.append(
                {
                    "name": span.name,
                    "cat": span.category or "span",
                    "ph": "X",
                    "ts": round(span.start_s * 1e6, 3),
                    "dur": round(span.duration_s * 1e6, 3),
                    "pid": 1,
                    "tid": 1,
                    "args": {
                        "trace_id": span.trace_id,
                        "span_id": span.span_id,
                        "parent_id": span.parent_id,
                        **span.attrs,
                    },
                }
            )
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "trace_id": self.trace_id,
                "name": self.name,
                "dropped_spans": self.dropped,
            },
        }

    def write_chrome_trace(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_chrome_trace(), handle, indent=1)

    def to_collapsed(self) -> str:
        """Collapsed-stack text: one ``a;b;c <self-µs>`` line per stack.

        Sample weight is the span's *self* time (duration minus direct
        children), floored at zero, in integer microseconds — feed the
        output straight to ``flamegraph.pl`` or paste into speedscope.
        Identical stacks are merged, as the format requires.
        """
        index = self._children_index()
        weights: Dict[str, int] = {}

        def walk(span: Span, prefix: str) -> None:
            stack = f"{prefix};{span.name}" if prefix else span.name
            children = index.get(span.span_id, [])
            child_time = sum(child.duration_s for child in children)
            self_us = int(max(span.duration_s - child_time, 0.0) * 1e6)
            weights[stack] = weights.get(stack, 0) + self_us
            for child in children:
                walk(child, stack)

        for root in index.get(None, []):
            walk(root, "")
        return "\n".join(
            f"{stack} {weight}" for stack, weight in sorted(weights.items())
        )

    def format_tree(self) -> str:
        """An indented, human-readable span tree (REPL ``.trace``)."""
        index = self._children_index()
        lines: List[str] = [f"trace {self.trace_id} ({self.name})"]

        def walk(span: Span, depth: int) -> None:
            label = span.name
            if span.category and span.category not in ("query", "phase"):
                label += f" [{span.category}]"
            extras = "".join(
                f" {key}={value}" for key, value in sorted(span.attrs.items())
            )
            lines.append(
                "  " * depth
                + f"{label}  {format_seconds(span.duration_s)}{extras}"
            )
            for child in index.get(span.span_id, []):
                walk(child, depth + 1)

        for root in index.get(None, []):
            walk(root, 1)
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "name": self.name,
            "dropped_spans": self.dropped,
            "spans": [span.to_dict() for span in self.spans],
        }
